package orfdisk

import (
	"errors"
	"fmt"
	"time"

	"orfdisk/internal/replica"
	"orfdisk/internal/wal"
)

// Follower mode: an engine created with EngineConfig.Follower is a read
// replica. It refuses writes (Ingest/IngestBatch/Retire fail with
// ErrNotLeader), and instead implements replica.Applier: records shipped
// from the leader are appended to the follower's own WAL *at the
// leader's sequence numbers* (wal.AppendAt), then applied to the shard
// workers exactly like recovery replay. Because the follower mirrors
// leader numbering, its snapshots, crash recovery and replication-resume
// position all speak leader offsets — and after Promote, appends simply
// continue the leader's sequence, so a promoted follower's saved state
// is byte-identical to the state an uninterrupted leader would have
// saved.
//
// The read path is fully live on a follower: shards publish frozen
// snapshots as replicated records are applied, so /v1/predict serves
// warm reads whose staleness is the replication lag plus the freeze
// cadence.

// ErrNotLeader reports a write routed to a follower replica. HTTP maps
// it to 409 Conflict; clients should retry against the leader.
var ErrNotLeader = errors.New("orfdisk: not the leader (follower replicas are read-only)")

// ErrSyncUnacked reports a synchronous-commit write that is durable on
// the leader but was not acknowledged by the configured number of
// followers in time. The record is NOT lost — it is fsynced locally
// and will ship when a follower reattaches — but it does not yet have
// the cross-node durability SyncAcks promises. HTTP maps it to 503
// with Retry-After; clients must treat the write as indeterminate.
var ErrSyncUnacked = errors.New("orfdisk: write durable locally but not acknowledged by enough followers")

// AckWaiter blocks until k followers have durably acknowledged a WAL
// sequence number — implemented by *replica.Source. The engine calls
// it after its own fsync when EngineConfig.SyncAcks > 0.
type AckWaiter interface {
	WaitAcked(seq uint64, k int, timeout time.Duration) error
}

// SetAckWaiter attaches the replication source whose follower acks
// gate synchronous commits. Until one is attached, an engine with
// SyncAcks > 0 fails writes (fail-closed: the guarantee cannot be
// provided, so the write is not acknowledged).
func (e *Engine) SetAckWaiter(w AckWaiter) { e.ackWaiter.Store(&w) }

// SetReplicationSourceAddr records the address of the replication
// listener this engine is serving, for /v1/replication — the routing
// tier uses it to re-point surviving followers after a promotion.
func (e *Engine) SetReplicationSourceAddr(addr string) { e.replAddr.Store(addr) }

// SeedStatser reports follower seed-transfer totals — implemented by
// *replica.Source. wireBytes are post-compression bytes on the wire,
// rawBytes the uncompressed bytes they represent.
type SeedStatser interface {
	SeedStats() (seeds, wireBytes, rawBytes uint64)
}

// SetSeedStats attaches the replication source whose seed-transfer
// counters /v1/replication reports on leaders.
func (e *Engine) SetSeedStats(s SeedStatser) { e.seedStats.Store(&s) }

// waitSyncAcks gates a leader write behind follower acks when
// synchronous commit is on. The record is already applied and in the
// WAL; Sync makes it durable (and shippable — the source only streams
// fsynced records), then the waiter parks until SyncAcks followers
// have fsynced it too. Concurrent writers share fsyncs (group commit):
// a Sync that finds nothing dirty is a mutex acquire.
func (e *Engine) waitSyncAcks(seq uint64) error {
	if e.syncAcks <= 0 || e.follower.Load() {
		return nil
	}
	if err := e.wal.Sync(); err != nil {
		return err
	}
	wp := e.ackWaiter.Load()
	if wp == nil {
		return fmt.Errorf("%w: no replication source attached", ErrSyncUnacked)
	}
	if err := (*wp).WaitAcked(seq, e.syncAcks, e.syncAckTimeout); err != nil {
		return fmt.Errorf("%w: %v", ErrSyncUnacked, err)
	}
	return nil
}

// IsFollower reports whether the engine currently refuses writes.
func (e *Engine) IsFollower() bool { return e.follower.Load() }

// WAL exposes the engine's write-ahead log for replication (a
// replica.Source ships it to followers). Nil without a DataDir.
func (e *Engine) WAL() *wal.WAL { return e.wal }

// ReplicationResume returns the last leader sequence number this engine
// has durably applied (0 before any). Part of replica.Applier: it is
// the handshake resume position and the value of every ack.
func (e *Engine) ReplicationResume() uint64 { return e.replApplied.Load() }

// ObserveLeaderHead records the leader's newest committed sequence
// number and the leader-side send time of the frame that carried it.
// Part of replica.Applier; feeds the replica_lag_* gauges and Ready.
// The local receipt time is recorded too: Ready uses it to detect a
// silently dead stream, which freezes the observed head and would
// otherwise read as zero lag forever.
func (e *Engine) ObserveLeaderHead(head uint64, sentAt time.Time) {
	e.leaderHead.Store(head)
	e.leaderSent.Store(sentAt.UnixNano())
	e.lastFrame.Store(time.Now().UnixNano())
}

// ApplyReplicated durably applies a batch of leader records: each is
// appended to the follower's WAL at the leader's sequence number, then
// applied to its model's shard; the batch is fsynced before return, so
// the ack that follows only ever covers crash-safe state. Part of
// replica.Applier.
func (e *Engine) ApplyReplicated(recs []replica.Record) error {
	if !e.follower.Load() {
		// A promoted (or misconfigured) engine must not mix a replication
		// stream into its own appends.
		return ErrNotLeader
	}
	applied := e.replApplied.Load()
	for _, r := range recs {
		if r.Seq <= applied {
			continue // duplicate delivery after a reconnect
		}
		// A record below the WAL tail is already durable here from an
		// earlier delivery whose in-memory apply failed transiently
		// (e.g. ErrBusy on a full shard mailbox tore the stream down
		// after AppendAt succeeded). Redelivery then only needs the
		// apply: re-appending would fail AppendAt's monotonicity check
		// forever and permanently wedge replication on reconnect.
		if r.Seq >= e.wal.NextSeq() {
			if err := e.wal.AppendAt(r.Seq, r.Payload); err != nil {
				return err
			}
		}
		if err := e.applyReplicatedRecord(r.Seq, r.Payload); err != nil {
			return err
		}
		applied = r.Seq
		e.replApplied.Store(applied)
	}
	return e.wal.Sync()
}

// applyReplicatedRecord routes one already-durable leader record to its
// shard, mirroring recovery replay: routes commit, the predictor
// updates, a rejected record is skipped (the leader surfaced that same
// deterministic error to its client, so skipping keeps state identical).
func (e *Engine) applyReplicatedRecord(seq uint64, payload []byte) error {
	rec, err := decodeRecord(payload)
	if err != nil {
		return err
	}
	switch rec.kind {
	case recCursor:
		// Backfill cursor records carry no model state; the follower just
		// tracks the resume point so a promoted follower can continue an
		// interrupted backfill exactly like a restarted leader.
		e.noteCursorRecord(seq, rec.cur)
		return nil
	case recObserve, recObserveV2, recObserveBF:
		if rec.kind == recObserveBF {
			e.noteBackfillRecord(seq)
		}
		e.mu.Lock()
		e.modelOf[rec.obs.Serial] = rec.obs.Model
		e.mu.Unlock()
		var ierr error
		if err := e.pool.Do(rec.obs.Model, func(s *shardState) {
			if rec.kind == recObserveBF {
				// Mirror the leader's scoring-free apply (identical state).
				ierr = s.p.Absorb(rec.obs.Observation)
			} else {
				_, ierr = s.p.Ingest(rec.obs.Observation)
			}
			s.lastSeq = seq
			if s.firstUnsnapped == 0 {
				s.firstUnsnapped = seq
			}
			if ierr == nil {
				e.noteApplied(s, 1)
			}
		}); err != nil {
			return err
		}
		if ierr != nil {
			e.met.replaySkipped.Inc()
			e.log.Warn("replication: predictor rejected record; skipping",
				"seq", seq, "model", rec.obs.Model, "serial", rec.obs.Serial, "err", ierr)
			return nil
		}
		e.met.ingests.Inc()
		if rec.obs.Failed {
			e.mu.Lock()
			delete(e.modelOf, rec.obs.Serial)
			e.mu.Unlock()
		}
	case recRetire:
		if err := e.pool.Do(rec.obs.Model, func(s *shardState) {
			s.p.Retire(rec.obs.Serial)
			s.lastSeq = seq
			if s.firstUnsnapped == 0 {
				s.firstUnsnapped = seq
			}
		}); err != nil {
			return err
		}
		e.mu.Lock()
		delete(e.modelOf, rec.obs.Serial)
		e.mu.Unlock()
	default:
		return fmt.Errorf("orfdisk: unknown replicated record kind %d at seq %d", rec.kind, seq)
	}
	return nil
}

// lagRecords returns how many leader records the follower has yet to
// apply (0 for leaders and caught-up followers).
func (e *Engine) lagRecords() uint64 {
	if !e.follower.Load() {
		return 0
	}
	head, applied := e.leaderHead.Load(), e.replApplied.Load()
	if head <= applied {
		return 0
	}
	return head - applied
}

// lagSeconds estimates replication staleness: 0 when caught up, else
// the age of the newest leader frame the follower has not fully applied.
func (e *Engine) lagSeconds() float64 {
	if e.lagRecords() == 0 {
		return 0
	}
	sent := e.leaderSent.Load()
	if sent == 0 {
		return 0
	}
	return time.Since(time.Unix(0, sent)).Seconds()
}

// ReplicationStatus is the GET /v1/replication report.
type ReplicationStatus struct {
	Role        string  `json:"role"` // "leader" | "follower"
	Applied     uint64  `json:"applied_seq"`
	LeaderHead  uint64  `json:"leader_head,omitempty"`
	LagRecords  uint64  `json:"lag_records"`
	LagSeconds  float64 `json:"lag_seconds"`
	ReadyMaxLag uint64  `json:"ready_max_lag,omitempty"`
	// SilenceSeconds is how long ago the follower last heard any frame
	// from its leader (0 until the first frame, and on leaders).
	SilenceSeconds float64 `json:"silence_seconds,omitempty"`
	// SyncAcks is the leader's synchronous-commit requirement: writes
	// are acknowledged only after this many followers fsync them
	// (0 = asynchronous replication).
	SyncAcks int `json:"sync_acks,omitempty"`
	// ReplicateAddr is the address of the replication listener this
	// leader serves, when one is attached — the routing tier re-points
	// surviving followers at it after a promotion.
	ReplicateAddr string `json:"replicate_addr,omitempty"`
	// Seed-transfer totals from the attached replication source: how
	// many diverged followers this leader has re-seeded, and the wire
	// (post-compression) vs raw bytes those transfers moved.
	SeedsServed   uint64 `json:"seeds_served,omitempty"`
	SeedWireBytes uint64 `json:"seed_wire_bytes,omitempty"`
	SeedRawBytes  uint64 `json:"seed_raw_bytes,omitempty"`
}

// Replication reports the engine's replication role and lag. The
// follower branch deliberately avoids e.wal: a follower's WAL handle
// is swapped during a seed install, and the applied position lives in
// an atomic either way.
func (e *Engine) Replication() ReplicationStatus {
	if e.follower.Load() {
		st := ReplicationStatus{
			Role:        "follower",
			Applied:     e.replApplied.Load(),
			LeaderHead:  e.leaderHead.Load(),
			LagRecords:  e.lagRecords(),
			LagSeconds:  e.lagSeconds(),
			ReadyMaxLag: e.readyMaxLag,
		}
		if last := e.lastFrame.Load(); last != 0 {
			st.SilenceSeconds = time.Since(time.Unix(0, last)).Seconds()
		}
		return st
	}
	st := ReplicationStatus{Role: "leader", Applied: e.wallessApplied(), SyncAcks: e.syncAcks}
	if addr, ok := e.replAddr.Load().(string); ok {
		st.ReplicateAddr = addr
	}
	if p := e.seedStats.Load(); p != nil {
		st.SeedsServed, st.SeedWireBytes, st.SeedRawBytes = (*p).SeedStats()
	}
	return st
}

// wallessApplied is the leader-side applied position (newest committed
// sequence number), tolerating the in-memory (no WAL) configuration.
func (e *Engine) wallessApplied() uint64 {
	if e.wal == nil {
		return 0
	}
	return e.wal.NextSeq() - 1
}

// Ready reports whether the engine should receive traffic: a leader is
// ready once NewEngine has returned (recovery complete); a follower is
// ready once it has heard from its leader, its lag is at most
// EngineConfig.ReadyMaxLag records, and a leader frame has arrived
// within EngineConfig.ReadyMaxSilence. The reason is empty when ready.
func (e *Engine) Ready() (bool, string) {
	if !e.follower.Load() {
		return true, ""
	}
	if e.leaderSent.Load() == 0 {
		return false, "follower has not heard from its leader yet"
	}
	if lag := e.lagRecords(); lag > e.readyMaxLag {
		return false, fmt.Sprintf("replication lag %d records exceeds limit %d", lag, e.readyMaxLag)
	}
	// A dead stream freezes leaderHead, so the lag check above reads 0
	// exactly when the replica is at its stalest. Silence — no frame, not
	// even a heartbeat — is the signal that catches it.
	if last := e.lastFrame.Load(); last != 0 {
		if silence := time.Since(time.Unix(0, last)); silence > e.readyMaxSilence {
			return false, fmt.Sprintf("no leader frame for %s (limit %s): leader dead or partitioned",
				silence.Round(time.Millisecond), e.readyMaxSilence)
		}
	}
	return true, ""
}

// Promote turns a follower into a leader. Idempotent; safe to call on a
// leader (no-op). The engine starts accepting writes immediately,
// continuing the leader's sequence numbering, and any OnPromote hooks
// run (synchronously) exactly once — the serving layer uses one to stop
// the follower client.
//
// Promote does not contact the old leader: the caller (a routing tier,
// an operator) decides when the leader is dead. Promoting while the old
// leader still accepts writes forks the logs — exactly the split-brain
// every external failover system risks; fence the old leader first.
func (e *Engine) Promote() {
	if !e.follower.CompareAndSwap(true, false) {
		return
	}
	e.log.Info("promoted to leader", "applied_seq", e.replApplied.Load())
	e.promoteMu.Lock()
	hooks := e.onPromote
	e.onPromote = nil
	e.promoteMu.Unlock()
	for _, fn := range hooks {
		fn()
	}
}

// Demote turns a leader back into a write-refusing follower: Ingest,
// IngestBatch and Retire fail with ErrNotLeader immediately. It is the
// fencing half of failover — a routing tier (or operator) demotes a
// suspect old leader before or after promoting a replacement, so a
// resurrected process cannot keep accepting direct writes and fork the
// log. A demoted engine has no replication client pulling from the new
// leader; it also reports not-ready, keeping it out of read rotations
// until it is restarted with -follow to rejoin the group as a real
// replica. Idempotent; a no-op on an engine that is already a follower.
func (e *Engine) Demote() {
	if !e.follower.CompareAndSwap(false, true) {
		return
	}
	// Seed the follower-side position from the leader-side one so
	// Replication() and any later resume speak the WAL tail, not zero.
	e.replApplied.Store(e.wallessApplied())
	e.log.Warn("demoted: refusing writes until restarted as a follower",
		"applied_seq", e.replApplied.Load())
}

// OnPromote registers fn to run when Promote fires (synchronously, in
// registration order). Registering after promotion runs fn immediately.
func (e *Engine) OnPromote(fn func()) {
	e.promoteMu.Lock()
	if e.follower.Load() {
		e.onPromote = append(e.onPromote, fn)
		e.promoteMu.Unlock()
		return
	}
	e.promoteMu.Unlock()
	fn()
}

// registerReplicaGauges surfaces follower lag for scraping. Registered
// for every engine: leaders (and promoted followers) read 0.
func (e *Engine) registerReplicaGauges() {
	e.reg.GaugeFunc("replica_lag_records",
		"Leader records not yet applied by this follower (0 on leaders).",
		func() float64 { return float64(e.lagRecords()) })
	e.reg.GaugeFunc("replica_lag_seconds",
		"Age of the newest unapplied leader frame (0 when caught up or leading).",
		func() float64 { return e.lagSeconds() })
}
