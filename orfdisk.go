// Package orfdisk is an online-learning disk failure predictor for data
// centers, reproducing Xiao et al., "Disk Failure Prediction in Data
// Centers via Online Learning" (ICPP 2018).
//
// The heart of the library is Predictor, which implements the paper's
// Algorithm 2 end to end over a stream of daily SMART snapshots:
//
//   - min-max feature scaling maintained online (Eq. 5);
//   - the automatic online label method: each disk's recent samples wait
//     in a fixed-length queue until the disk either survives the
//     prediction horizon (negative) or fails (positive);
//   - an Online Random Forest (Algorithm 1) with two-Poisson online
//     bagging for class imbalance, Gini-driven online tree growth, and
//     OOBE-triggered replacement of outdated trees;
//   - a live risk prediction for every arriving snapshot.
//
// Supporting packages under internal/ provide the evaluation substrate:
// a Backblaze-like fleet simulator, offline RF/DT/SVM/NB baselines, the
// Wilcoxon feature-selection pipeline and the paper's experiment
// protocols. The cmd/orfexp binary regenerates every table and figure of
// the paper's evaluation section.
package orfdisk

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"orfdisk/internal/core"
	"orfdisk/internal/labeling"
	"orfdisk/internal/smart"
)

// ORFConfig re-exports the online random forest hyper-parameters
// (Algorithm 1). The zero value selects the paper's defaults: T=30 trees,
// alpha=200, beta=0.1, lambda_p=1, lambda_n=0.02.
type ORFConfig = core.Config

// Observation is one daily SMART snapshot of one disk, the Predictor's
// input unit.
type Observation struct {
	// Serial uniquely identifies the disk.
	Serial string
	// Day is the acquisition day (any monotonically increasing integer
	// clock shared by the fleet).
	Day int
	// Failed marks the disk's final report: the disk was diagnosed
	// failed when this snapshot was taken.
	Failed bool
	// Values holds the full candidate feature vector in catalog order;
	// see CatalogSize and FeatureNames. Build it with PackValues or from
	// a Backblaze CSV via internal/smart.Reader.
	Values []float64
}

// Prediction is the Predictor's output for one observation.
type Prediction struct {
	Serial string
	Day    int
	// Score is the forest's failure probability for this snapshot
	// (NaN for failure events, which produce no prediction).
	Score float64
	// Risky reports Score >= the alarm threshold: the paper recommends
	// immediate data migration when set.
	Risky bool
	// Final marks a failure event (the disk left the fleet).
	Final bool
}

// Config configures a Predictor.
type Config struct {
	// Features are catalog indexes of the model inputs; nil selects the
	// paper's 19 features (Table 2).
	Features []int
	// ORF holds the forest hyper-parameters (zero = paper defaults).
	ORF ORFConfig
	// Horizon is the prediction window in days (and the per-disk queue
	// length); 0 selects the paper's 7.
	Horizon int
	// Threshold is the alarm probability threshold; 0 selects 0.5.
	Threshold float64
}

// Predictor runs the paper's online learning pipeline. Not safe for
// concurrent use; wrap with a mutex or shard by disk if needed.
type Predictor struct {
	features  []int
	scaler    *smart.Scaler
	labeler   *labeling.Labeler
	forest    *core.Forest
	threshold float64
	horizon   int
	scaled    []float64 // scratch buffer

	// free recycles projected feature vectors: each Ingest clones the
	// selected features out of the raw catalog vector for the labeling
	// queue, and the clone comes back here when its sample is released,
	// so the steady-state path allocates no projection buffers.
	free [][]float64
	// Batch-release scratch (disk failures release up to horizon queued
	// samples at once; scaling state is constant across one release, so
	// they can be transformed upfront and applied with one
	// Forest.UpdateBatch wake-up).
	relScaled [][]float64
	relX      [][]float64
	relY      []int

	// Read-path snapshot state (see Freeze/Frozen): the last published
	// FrozenModel and the scratch pools its snapshots share. The pools
	// are rebuilt whenever scorePoolDim disagrees with len(features), so
	// snapshots never score through a wrong-width pooled buffer.
	frozen       atomic.Pointer[FrozenModel]
	scorePool    *sync.Pool
	scorePoolDim int
	batchPool    *sync.Pool
}

// NewPredictor creates a Predictor.
func NewPredictor(cfg Config) *Predictor {
	features := cfg.Features
	if len(features) == 0 {
		features = smart.SelectedIndexes()
	}
	horizon := cfg.Horizon
	if horizon <= 0 {
		horizon = smart.PredictionHorizonDays
	}
	threshold := cfg.Threshold
	if threshold <= 0 {
		threshold = 0.5
	}
	p := &Predictor{
		features:  features,
		scaler:    smart.NewScaler(len(features)),
		forest:    core.New(len(features), cfg.ORF),
		threshold: threshold,
		horizon:   horizon,
		scaled:    make([]float64, len(features)),
	}
	p.bindLabeler()
	return p
}

// bindLabeler wires the predictor's labeling queues to the forest.
// Queued samples are stored raw and scaled at release time, so label
// releases always use the freshest feature ranges. Released sample
// buffers are recycled into the projection free-list.
func (p *Predictor) bindLabeler() {
	p.labeler = labeling.NewLabeler(p.horizon, func(s labeling.Labeled) {
		y := 0
		if s.Y == smart.Positive {
			y = 1
		}
		p.forest.Update(p.scaler.Transform(s.X, p.scaled), y)
		p.free = append(p.free, s.X)
	})
	// Disk failures release a whole queue at once. The scaler only moves
	// on Ingest (never during releases), so the batch can be transformed
	// upfront and fed to the forest with one UpdateBatch — bit-identical
	// to releasing the samples one by one.
	p.labeler.UpdateBatch = func(batch []labeling.Labeled) {
		for len(p.relScaled) < len(batch) {
			p.relScaled = append(p.relScaled, make([]float64, len(p.features)))
		}
		p.relX, p.relY = p.relX[:0], p.relY[:0]
		for i, s := range batch {
			p.scaler.Transform(s.X, p.relScaled[i])
			y := 0
			if s.Y == smart.Positive {
				y = 1
			}
			p.relX = append(p.relX, p.relScaled[i])
			p.relY = append(p.relY, y)
			p.free = append(p.free, s.X)
		}
		p.forest.UpdateBatch(p.relX, p.relY)
	}
}

// project clones the selected features out of a raw catalog vector,
// reusing a recycled buffer when one is available. The clone is owned by
// the labeling queue until its sample is released.
func (p *Predictor) project(values []float64) []float64 {
	if n := len(p.free); n > 0 {
		x := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		for i, j := range p.features {
			x[i] = values[j]
		}
		return x
	}
	return smart.Project(values, p.features)
}

// Ingest processes one observation per Algorithm 2: it updates the model
// with whatever the labeling queues release, then (for operating disks)
// returns the live risk prediction for the new snapshot.
func (p *Predictor) Ingest(obs Observation) (Prediction, error) {
	if len(obs.Values) != smart.NumFeatures() {
		return Prediction{}, fmt.Errorf(
			"orfdisk: observation carries %d values, want the %d-feature catalog",
			len(obs.Values), smart.NumFeatures())
	}
	x := p.project(obs.Values)
	p.scaler.Observe(x)

	if obs.Failed {
		// Disk D_i failed: label its queue positive and update (Alg. 2
		// lines 2-8). No prediction is made for a dead disk.
		p.labeler.Observe(obs.Serial, x, obs.Day)
		p.labeler.Fail(obs.Serial)
		return Prediction{Serial: obs.Serial, Day: obs.Day, Score: math.NaN(), Final: true}, nil
	}

	// Operating disk: rotate the queue (possibly releasing the oldest
	// sample as negative), then predict on the fresh snapshot. Alarms
	// are suppressed until the forest has absorbed at least one positive
	// sample: an untrained ensemble outputs the 0.5 prior for
	// everything, which would alarm the whole fleet on day one.
	p.labeler.Observe(obs.Serial, x, obs.Day)
	score := p.forest.PredictProba(p.scaler.Transform(x, p.scaled))
	return Prediction{
		Serial: obs.Serial,
		Day:    obs.Day,
		Score:  score,
		// PosSeen (O(1)) instead of Stats().PosSeen: Stats walks every
		// node of every tree, which dominated the per-observation cost.
		Risky: score >= p.threshold && p.forest.PosSeen() > 0,
	}, nil
}

// Absorb processes one observation exactly like Ingest but skips the
// live risk prediction. Scoring is a pure read (the forest, scaler and
// labeling queues only move on updates), so after Absorb the predictor
// is in bit-for-bit the state an Ingest of the same observation would
// have left — minus the dominant PredictProba tree walk. Bulk replay
// (internal/backfill) runs on this path: historical rows need the
// model's state, not day-by-day alarms.
func (p *Predictor) Absorb(obs Observation) error {
	if len(obs.Values) != smart.NumFeatures() {
		return fmt.Errorf(
			"orfdisk: observation carries %d values, want the %d-feature catalog",
			len(obs.Values), smart.NumFeatures())
	}
	x := p.project(obs.Values)
	p.scaler.Observe(x)
	p.labeler.Observe(obs.Serial, x, obs.Day)
	if obs.Failed {
		p.labeler.Fail(obs.Serial)
	}
	return nil
}

// IngestBatch processes a slice of observations in order, exactly as the
// equivalent sequence of Ingest calls would (predictions interleave with
// model updates, so observation i+1 is scored by a model that has seen
// observation i). The whole batch is validated upfront — on error,
// nothing is applied. Predictions are appended to out (pass a reused
// slice to avoid allocation) and the extended slice is returned.
func (p *Predictor) IngestBatch(obs []Observation, out []Prediction) ([]Prediction, error) {
	for i := range obs {
		if len(obs[i].Values) != smart.NumFeatures() {
			return out, fmt.Errorf(
				"orfdisk: observation %d carries %d values, want the %d-feature catalog",
				i, len(obs[i].Values), smart.NumFeatures())
		}
	}
	for i := range obs {
		pred, err := p.Ingest(obs[i])
		if err != nil {
			return out, fmt.Errorf("orfdisk: batch observation %d: %w", i, err)
		}
		out = append(out, pred)
	}
	return out, nil
}

// Retire drops a disk that left the fleet without failing (e.g. planned
// decommission). Its queued samples are discarded unlabeled.
func (p *Predictor) Retire(serial string) { p.labeler.Retire(serial) }

// Score returns the current failure probability for a raw catalog vector
// without updating any state. Steady state it allocates nothing: the
// projection buffer comes from (and returns to) the same free-list
// Ingest recycles queue buffers through.
func (p *Predictor) Score(values []float64) (float64, error) {
	if len(values) != smart.NumFeatures() {
		return 0, fmt.Errorf("orfdisk: %d values, want %d", len(values), smart.NumFeatures())
	}
	x := p.project(values)
	score := p.forest.PredictProba(p.scaler.Transform(x, p.scaled))
	p.free = append(p.free, x)
	return score, nil
}

// SetThreshold changes the alarm threshold (e.g. after calibrating to a
// FAR budget).
func (p *Predictor) SetThreshold(t float64) { p.threshold = t }

// Threshold returns the current alarm threshold.
func (p *Predictor) Threshold() float64 { return p.threshold }

// Horizon returns the prediction window in days.
func (p *Predictor) Horizon() int { return p.horizon }

// Stats reports the underlying forest's state.
func (p *Predictor) Stats() core.Stats { return p.forest.Stats() }

// FeatureImportance is one of the paper's stated ORF advantages: the
// model is interpretable and "can be used to reveal the real cause of
// disk failures". It returns the features the forest's splits currently
// rely on, most important first.
type FeatureImportance struct {
	Feature    string  // canonical name, e.g. "smart_187_raw"
	Label      string  // human-readable, e.g. "Reported Uncorrectable Errors (Raw)"
	Importance float64 // normalized; all entries sum to <= 1
}

// FeatureImportance returns the model's current per-feature importance,
// sorted descending. Zero-importance features are omitted.
func (p *Predictor) FeatureImportance() []FeatureImportance {
	imp := p.forest.FeatureImportance()
	out := make([]FeatureImportance, 0, len(imp))
	for i, v := range imp {
		if v == 0 {
			continue
		}
		f := smart.Catalog()[p.features[i]]
		out = append(out, FeatureImportance{
			Feature:    f.Name(),
			Label:      f.Label(),
			Importance: v,
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Importance > out[b].Importance })
	return out
}

// PendingSamples returns the number of queued, not-yet-labeled samples.
func (p *Predictor) PendingSamples() int { return p.labeler.Pending() }

// TrackedDisks returns the number of disks with live queues.
func (p *Predictor) TrackedDisks() int { return p.labeler.ActiveDisks() }

// CatalogSize returns the length of the full candidate feature vector an
// Observation must carry.
func CatalogSize() int { return smart.NumFeatures() }

// FeatureNames returns the catalog's canonical column names
// ("smart_5_raw", ...), index-aligned with Observation.Values.
func FeatureNames() []string {
	names := make([]string, smart.NumFeatures())
	for i, f := range smart.Catalog() {
		names[i] = f.Name()
	}
	return names
}

// DefaultFeatures returns the catalog indexes of the paper's 19 selected
// features (Table 2).
func DefaultFeatures() []int { return smart.SelectedIndexes() }

// PackValues builds a catalog vector from attribute readings. Each key
// is a SMART attribute ID; norm and raw supply the two values. Missing
// attributes stay zero.
func PackValues(norm, raw map[int]float64) []float64 {
	v := make([]float64, smart.NumFeatures())
	for id, val := range norm {
		if i := smart.FeatureIndex(id, smart.Norm); i >= 0 {
			v[i] = val
		}
	}
	for id, val := range raw {
		if i := smart.FeatureIndex(id, smart.Raw); i >= 0 {
			v[i] = val
		}
	}
	return v
}
