package orfdisk

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := NewServer(Config{Horizon: 2, ORF: ORFConfig{Trees: 3, Seed: 1}})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestServerObserveAndStats(t *testing.T) {
	ts := newTestServer(t)
	for day := 0; day < 5; day++ {
		resp := postJSON(t, ts.URL+"/v1/observe", ObservationRequest{
			Serial: "d1", Model: "ST4000", Day: day,
			Norm: map[int]float64{187: 100}, Raw: map[int]float64{187: 0},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("observe status %d", resp.StatusCode)
		}
		var pred PredictionResponse
		if err := json.NewDecoder(resp.Body).Decode(&pred); err != nil {
			t.Fatal(err)
		}
		if pred.Serial != "d1" || pred.Day != day || pred.Final {
			t.Fatalf("prediction %+v", pred)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats []ModelStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if len(stats) != 1 || stats[0].Model != "ST4000" {
		t.Fatalf("stats %+v", stats)
	}
	// Horizon 2, 5 observations -> 3 released negatives.
	if stats[0].NegSeen != 3 || stats[0].Tracked != 1 {
		t.Fatalf("stats %+v", stats[0])
	}
}

func TestServerFailureEvent(t *testing.T) {
	ts := newTestServer(t)
	for day := 0; day < 3; day++ {
		postJSON(t, ts.URL+"/v1/observe", ObservationRequest{
			Serial: "d1", Model: "M", Day: day,
		})
	}
	resp := postJSON(t, ts.URL+"/v1/observe", ObservationRequest{
		Serial: "d1", Model: "M", Day: 3, Failed: true,
	})
	var pred PredictionResponse
	if err := json.NewDecoder(resp.Body).Decode(&pred); err != nil {
		t.Fatal(err)
	}
	if !pred.Final || pred.Score != 0 {
		t.Fatalf("failure prediction %+v", pred)
	}
}

func TestServerValidation(t *testing.T) {
	ts := newTestServer(t)
	// Missing serial.
	if resp := postJSON(t, ts.URL+"/v1/observe", ObservationRequest{Model: "M"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing serial -> %d", resp.StatusCode)
	}
	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/v1/observe", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON -> %d", resp.StatusCode)
	}
	// Unknown disk without model.
	if resp := postJSON(t, ts.URL+"/v1/observe", ObservationRequest{Serial: "ghost"}); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("missing model -> %d", resp.StatusCode)
	}
	// Wrong-width explicit values.
	if resp := postJSON(t, ts.URL+"/v1/observe", ObservationRequest{
		Serial: "x", Model: "M", Values: []float64{1, 2},
	}); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("short values -> %d", resp.StatusCode)
	}
}

func TestServerRetire(t *testing.T) {
	ts := newTestServer(t)
	postJSON(t, ts.URL+"/v1/observe", ObservationRequest{Serial: "d1", Model: "M", Day: 0})
	resp := postJSON(t, ts.URL+"/v1/retire", map[string]string{"serial": "d1"})
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("retire -> %d", resp.StatusCode)
	}
	var stats []ModelStats
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats[0].Tracked != 0 {
		t.Fatalf("retired disk still tracked: %+v", stats)
	}
}

func TestServerImportance(t *testing.T) {
	ts := newTestServer(t)
	postJSON(t, ts.URL+"/v1/observe", ObservationRequest{Serial: "d1", Model: "M", Day: 0})
	resp, err := http.Get(ts.URL + "/v1/importance?model=M")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("importance -> %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/importance?model=NOPE")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model -> %d", resp.StatusCode)
	}
}

func TestServerHealthz(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz -> %d", resp.StatusCode)
	}
}

func TestServerObserveBatch(t *testing.T) {
	ts := newTestServer(t)
	var req BatchRequest
	for day := 0; day < 3; day++ {
		for m := 0; m < 2; m++ {
			req.Observations = append(req.Observations, ObservationRequest{
				Serial: fmt.Sprintf("disk-%d", m),
				Model:  fmt.Sprintf("M%d", m),
				Day:    day,
			})
		}
	}
	// One invalid entry must fail alone, not the batch.
	req.Observations = append(req.Observations, ObservationRequest{Serial: "ghost"})
	resp := postJSON(t, ts.URL+"/v1/observe/batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	var out []BatchItemResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(req.Observations) {
		t.Fatalf("%d results for %d observations", len(out), len(req.Observations))
	}
	for i, item := range out[:len(out)-1] {
		if item.Error != "" {
			t.Fatalf("item %d failed: %s", i, item.Error)
		}
		if item.Serial != req.Observations[i].Serial || item.Day != req.Observations[i].Day {
			t.Fatalf("item %d misrouted: %+v", i, item)
		}
	}
	if out[len(out)-1].Error == "" {
		t.Fatal("invalid batch entry accepted")
	}
}

func TestServerModels(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var models []ModelInfo
	if err := json.NewDecoder(resp.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(models) != 0 {
		t.Fatalf("fresh server lists models: %+v", models)
	}
	postJSON(t, ts.URL+"/v1/observe", ObservationRequest{Serial: "d1", Model: "MA", Day: 0})
	postJSON(t, ts.URL+"/v1/observe", ObservationRequest{Serial: "d2", Model: "MB", Day: 0})
	resp, err = http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	if len(models) != 2 || models[0].Model != "MA" || models[1].Model != "MB" {
		t.Fatalf("models %+v", models)
	}
	if models[0].TrackedDisks != 1 {
		t.Fatalf("models %+v", models)
	}
}

func TestServerMethodNotAllowedJSON(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/observe")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/observe -> %d", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
		t.Fatalf("Allow header %q", allow)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("405 body is not JSON: %v", err)
	}
	if body["error"] == "" {
		t.Fatalf("405 body %v lacks error field", body)
	}
}

func TestServerRejectsUnknownFields(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/observe", "application/json",
		bytes.NewReader([]byte(`{"serial":"d1","model":"M","bogus":1}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field -> %d, want 400", resp.StatusCode)
	}
}

func TestServerBodyTooLarge(t *testing.T) {
	ts := newTestServer(t)
	big := make([]byte, maxBodyBytes+1024)
	for i := range big {
		big[i] = ' '
	}
	copy(big, `{"serial":"d1","model":"M"`)
	big[len(big)-1] = '}'
	resp, err := http.Post(ts.URL+"/v1/observe", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body -> %d, want 413", resp.StatusCode)
	}
}

func TestServerConcurrentObserve(t *testing.T) {
	ts := newTestServer(t)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			var firstErr error
			for day := 0; day < 30; day++ {
				body, _ := json.Marshal(ObservationRequest{
					Serial: fmt.Sprintf("disk-%d", g), Model: "M", Day: day,
				})
				r, err := http.Post(ts.URL+"/v1/observe", "application/json",
					bytes.NewReader(body))
				if err != nil {
					firstErr = err
					break
				}
				r.Body.Close()
				if r.StatusCode != http.StatusOK && firstErr == nil {
					firstErr = fmt.Errorf("status %d", r.StatusCode)
				}
			}
			done <- firstErr
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestServerMetricsEndpoint drives a durable server end to end and
// checks that /metrics reflects the traffic: HTTP request counts by
// path and code, engine ingest counters, WAL appends, snapshot
// counters, and the per-model gauges — in valid Prometheus text.
func TestServerMetricsEndpoint(t *testing.T) {
	dir := t.TempDir()
	eng, err := NewEngine(EngineConfig{
		Predictor: Config{Horizon: 2, ORF: ORFConfig{Trees: 3, Seed: 1}},
		DataDir:   dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServerWithEngine(eng)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})

	for day := 0; day < 4; day++ {
		resp := postJSON(t, ts.URL+"/v1/observe", ObservationRequest{
			Serial: "d1", Model: "ST4000", Day: day,
			Norm: map[int]float64{187: 100}, Raw: map[int]float64{187: 0},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("observe status %d", resp.StatusCode)
		}
	}
	// One rejected request so a non-200 code series exists.
	resp := postJSON(t, ts.URL+"/v1/observe", map[string]any{"bogus": true})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad observe status %d", resp.StatusCode)
	}
	if err := eng.Snapshot(); err != nil {
		t.Fatal(err)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", mresp.StatusCode)
	}
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content-type %q", ct)
	}
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)

	for _, want := range []string{
		`http_requests_total{path="/v1/observe",code="200"} 4`,
		`http_requests_total{path="/v1/observe",code="400"} 1`,
		"engine_ingests_total 4",
		"wal_append_records_total 4",
		"engine_snapshots_total 1",
		`engine_model_updates{model="ST4000"}`,
		`engine_model_tracked_disks{model="ST4000"} 1`,
		"engine_shards 1",
		"wal_segments 1",
		"# TYPE http_request_seconds histogram",
		`http_request_seconds_bucket{path="/v1/observe",le="+Inf"} 5`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full /metrics output:\n%s", text)
	}

	// Structural sanity: every non-comment line is `name{labels} value`
	// with a parseable float value.
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		if _, err := strconv.ParseFloat(line[i+1:], 64); err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
	}
}

// TestServerBatchLimits covers the batch endpoint's dedicated caps: a
// body larger than the default 1 MiB but under the batch cap succeeds, a
// body over the batch cap gets 413, and a batch with too many items gets
// 400 — without touching the engine.
func TestServerBatchLimits(t *testing.T) {
	srv := NewServer(Config{Horizon: 2, ORF: ORFConfig{Trees: 3, Seed: 1}})
	srv.SetBatchLimits(2<<20, 8)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})

	// The padding is intra-object whitespace so the decoder must read
	// through it; what matters here is that a body over the 1 MiB global
	// cap but under the batch cap succeeds.
	prefix := `{"observations":[{"serial":"d1","model":"M","day":0,` +
		`"norm":{"187":100},"raw":{"187":0}}]`
	body := prefix + strings.Repeat(" ", maxBodyBytes) + "}"
	resp, err := http.Post(ts.URL+"/v1/observe/batch", "application/json",
		strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch body over 1 MiB but under batch cap -> %d, want 200", resp.StatusCode)
	}

	// Over the batch cap: 413.
	big := prefix + strings.Repeat(" ", 3<<20) + "}"
	resp, err = http.Post(ts.URL+"/v1/observe/batch", "application/json",
		strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("batch body over batch cap -> %d, want 413", resp.StatusCode)
	}

	// Too many items: 400, and no observation is applied.
	obs := make([]ObservationRequest, 9)
	for i := range obs {
		obs[i] = ObservationRequest{
			Serial: fmt.Sprintf("over-%d", i), Model: "M", Day: 0,
			Norm: map[int]float64{187: 100},
		}
	}
	resp = postJSON(t, ts.URL+"/v1/observe/batch", BatchRequest{Observations: obs})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversize item count -> %d, want 400", resp.StatusCode)
	}
	var errResp map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&errResp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errResp["error"], "limit 8") {
		t.Fatalf("error message %q does not name the limit", errResp["error"])
	}

	// At the cap: accepted.
	resp = postJSON(t, ts.URL+"/v1/observe/batch", BatchRequest{Observations: obs[:8]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch at item cap -> %d, want 200", resp.StatusCode)
	}
}
