package orfdisk

import (
	"fmt"
	"net/http"
)

// The HTTP face of the lock-free read path. Both endpoints score
// against the target model's published frozen snapshot — no WAL
// append, no labeling-queue rotation, no shard mailbox hop — and
// surface the snapshot's staleness (updates_behind,
// snapshot_age_seconds) in every response.

// PredictRequest is the POST /v1/predict payload. The target model may
// be named directly (lock-free) or resolved from a serial the engine
// has previously observed (takes the routing read lock). Values
// optionally supplies the full catalog vector, overriding Norm/Raw.
type PredictRequest struct {
	Model  string          `json:"model,omitempty"`
	Serial string          `json:"serial,omitempty"`
	Norm   map[int]float64 `json:"norm,omitempty"`
	Raw    map[int]float64 `json:"raw,omitempty"`
	Values []float64       `json:"values,omitempty"`
}

func (r PredictRequest) values() []float64 {
	if r.Values != nil {
		return r.Values
	}
	return PackValues(r.Norm, r.Raw)
}

// PredictResponse is the POST /v1/predict reply.
type PredictResponse struct {
	Model  string  `json:"model"`
	Serial string  `json:"serial,omitempty"`
	Score  float64 `json:"score"`
	Risky  bool    `json:"risky"`
	// UpdatesBehind counts observations the model's shard has applied
	// since the scoring snapshot was published; SnapshotAgeSeconds is
	// the snapshot's wall-clock age. Both bound how stale the score is.
	UpdatesBehind      int64   `json:"updates_behind"`
	SnapshotAgeSeconds float64 `json:"snapshot_age_seconds"`
}

// PredictItem is one element of the POST /v1/predict/batch payload.
// The batch is addressed to a single model, so items carry only the
// vector (and an optional serial echoed back for correlation).
type PredictItem struct {
	Serial string          `json:"serial,omitempty"`
	Norm   map[int]float64 `json:"norm,omitempty"`
	Raw    map[int]float64 `json:"raw,omitempty"`
	Values []float64       `json:"values,omitempty"`
}

// PredictBatchRequest is the POST /v1/predict/batch payload.
type PredictBatchRequest struct {
	Model string        `json:"model"`
	Items []PredictItem `json:"items"`
}

// PredictBatchItem is one element of the POST /v1/predict/batch reply.
type PredictBatchItem struct {
	Serial string  `json:"serial,omitempty"`
	Score  float64 `json:"score"`
	Risky  bool    `json:"risky"`
	Error  string  `json:"error,omitempty"`
}

// PredictBatchResponse is the POST /v1/predict/batch reply. All items
// are scored against the same snapshot, so staleness is reported once.
type PredictBatchResponse struct {
	Model              string             `json:"model"`
	UpdatesBehind      int64              `json:"updates_behind"`
	SnapshotAgeSeconds float64            `json:"snapshot_age_seconds"`
	Results            []PredictBatchItem `json:"results"`
}

// resolveModel turns a predict request's model/serial addressing into a
// model name, writing the HTTP error itself when it cannot.
func (s *Server) resolveModel(w http.ResponseWriter, model, serial string) (string, bool) {
	if model != "" {
		return model, true
	}
	if serial == "" {
		writeError(w, http.StatusBadRequest, "bad request: missing model or serial")
		return "", false
	}
	model, ok := s.eng.ModelOf(serial)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown serial %q", serial))
		return "", false
	}
	return model, true
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req PredictRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeDecodeError(w, err)
		return
	}
	model, ok := s.resolveModel(w, req.Model, req.Serial)
	if !ok {
		return
	}
	res, err := s.eng.Score(model, req.values())
	switch {
	case err == nil:
	case err == ErrUnknownModel:
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown model %q", model))
		return
	default:
		writeError(w, http.StatusBadRequest, "bad request: "+err.Error())
		return
	}
	writeJSON(w, PredictResponse{
		Model:              model,
		Serial:             req.Serial,
		Score:              res.Score,
		Risky:              res.Risky,
		UpdatesBehind:      res.UpdatesBehind,
		SnapshotAgeSeconds: res.SnapshotAge.Seconds(),
	})
}

func (s *Server) handlePredictBatch(w http.ResponseWriter, r *http.Request) {
	var req PredictBatchRequest
	if err := decodeBodyCapped(w, r, &req, s.batchMaxBytes); err != nil {
		writeDecodeError(w, err)
		return
	}
	if req.Model == "" {
		writeError(w, http.StatusBadRequest, "bad request: missing model")
		return
	}
	if len(req.Items) > s.batchMaxItems {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch carries %d items, limit %d",
				len(req.Items), s.batchMaxItems))
		return
	}
	X := make([][]float64, len(req.Items))
	for i, it := range req.Items {
		if it.Values != nil {
			X[i] = it.Values
		} else {
			X[i] = PackValues(it.Norm, it.Raw)
		}
	}
	results, err := s.eng.ScoreBatch(req.Model, X, nil)
	if err != nil {
		// ScoreBatch only fails as a whole for an unknown model; vector
		// errors come back per item.
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown model %q", req.Model))
		return
	}
	resp := PredictBatchResponse{
		Model:   req.Model,
		Results: make([]PredictBatchItem, len(results)),
	}
	if len(results) > 0 {
		resp.UpdatesBehind = results[0].UpdatesBehind
		resp.SnapshotAgeSeconds = results[0].SnapshotAge.Seconds()
	}
	for i, res := range results {
		item := PredictBatchItem{Serial: req.Items[i].Serial}
		if res.Err != nil {
			item.Error = res.Err.Error()
		} else {
			item.Score = res.Score
			item.Risky = res.Risky
		}
		resp.Results[i] = item
	}
	writeJSON(w, resp)
}
