package orfdisk_test

import (
	"bytes"
	"fmt"

	"orfdisk"
)

// ExampleNewPredictor shows the minimal Algorithm 2 loop: ingest daily
// snapshots, let the labeling queues and the online forest do the rest.
func ExampleNewPredictor() {
	pred := orfdisk.NewPredictor(orfdisk.Config{
		ORF: orfdisk.ORFConfig{Trees: 5, Seed: 1},
	})

	values := orfdisk.PackValues(
		map[int]float64{5: 100, 187: 100}, // normalized values by SMART id
		map[int]float64{5: 0, 187: 0, 9: 12000},
	)
	p, err := pred.Ingest(orfdisk.Observation{
		Serial: "Z302T4N9", Day: 0, Values: values,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("risky:", p.Risky, "- tracked disks:", pred.TrackedDisks())
	// Output: risky: false - tracked disks: 1
}

// ExamplePredictor_SaveModel demonstrates snapshotting a model and
// resuming it bit-for-bit.
func ExamplePredictor_SaveModel() {
	pred := orfdisk.NewPredictor(orfdisk.Config{
		ORF: orfdisk.ORFConfig{Trees: 3, Seed: 7},
	})
	v := make([]float64, orfdisk.CatalogSize())
	for day := 0; day < 10; day++ {
		if _, err := pred.Ingest(orfdisk.Observation{Serial: "d", Day: day, Values: v}); err != nil {
			panic(err)
		}
	}

	var buf bytes.Buffer
	if err := pred.SaveModel(&buf); err != nil {
		panic(err)
	}
	resumed, err := orfdisk.LoadPredictor(&buf)
	if err != nil {
		panic(err)
	}
	fmt.Println("updates preserved:", resumed.Stats().Updates == pred.Stats().Updates)
	// Output: updates preserved: true
}

// ExampleNewFleet routes two drive models to independent online models,
// as section 4.1 of the paper requires.
func ExampleNewFleet() {
	fleet := orfdisk.NewFleet(orfdisk.Config{ORF: orfdisk.ORFConfig{Trees: 3, Seed: 1}})
	v := make([]float64, orfdisk.CatalogSize())
	for _, m := range []string{"ST4000DM000", "ST3000DM001"} {
		_, err := fleet.Ingest(orfdisk.FleetObservation{
			Model:       m,
			Observation: orfdisk.Observation{Serial: "disk-" + m, Day: 0, Values: v},
		})
		if err != nil {
			panic(err)
		}
	}
	fmt.Println(fleet.Models())
	// Output: [ST3000DM001 ST4000DM000]
}
