package orfdisk

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
)

// Server wraps a Fleet behind an HTTP API, the deployment form a data
// center would actually run: collectors POST daily SMART snapshots, the
// server updates the per-model online forests and answers with the live
// risk prediction. All mutation is serialized by an internal mutex, so
// the handler is safe for concurrent requests.
//
// Endpoints:
//
//	POST /v1/observe   {serial, model, day, failed, norm:{id:val}, raw:{id:val}}
//	                   -> {serial, day, score, risky, final}
//	POST /v1/retire    {serial}
//	GET  /v1/stats     -> per-model forest statistics
//	GET  /v1/importance?model=M -> ranked feature importance
//	GET  /healthz      -> 200 ok
type Server struct {
	mu    sync.Mutex
	fleet *Fleet
}

// NewServer creates a Server around a fresh Fleet with the given
// predictor configuration.
func NewServer(cfg Config) *Server {
	return &Server{fleet: NewFleet(cfg)}
}

// ObservationRequest is the POST /v1/observe payload.
type ObservationRequest struct {
	Serial string          `json:"serial"`
	Model  string          `json:"model"`
	Day    int             `json:"day"`
	Failed bool            `json:"failed"`
	Norm   map[int]float64 `json:"norm"`
	Raw    map[int]float64 `json:"raw"`
	// Values optionally supplies the full 48-feature catalog vector
	// directly, overriding Norm/Raw.
	Values []float64 `json:"values,omitempty"`
}

// PredictionResponse is the POST /v1/observe reply.
type PredictionResponse struct {
	Serial string  `json:"serial"`
	Day    int     `json:"day"`
	Score  float64 `json:"score"`
	Risky  bool    `json:"risky"`
	Final  bool    `json:"final"`
}

// Handler returns the http.Handler serving the API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/observe", s.handleObserve)
	mux.HandleFunc("POST /v1/retire", s.handleRetire)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/importance", s.handleImportance)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	var req ObservationRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Serial == "" {
		http.Error(w, "bad request: missing serial", http.StatusBadRequest)
		return
	}
	values := req.Values
	if values == nil {
		values = PackValues(req.Norm, req.Raw)
	}
	obs := FleetObservation{
		Model: req.Model,
		Observation: Observation{
			Serial: req.Serial, Day: req.Day, Failed: req.Failed, Values: values,
		},
	}
	s.mu.Lock()
	pred, err := s.fleet.Ingest(obs)
	s.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	resp := PredictionResponse{
		Serial: pred.Serial, Day: pred.Day, Risky: pred.Risky, Final: pred.Final,
	}
	if !pred.Final { // NaN is not valid JSON
		resp.Score = pred.Score
	}
	writeJSON(w, resp)
}

func (s *Server) handleRetire(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Serial string `json:"serial"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Serial == "" {
		http.Error(w, "bad request", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	s.fleet.Retire(req.Serial)
	s.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

// ModelStats is one model's entry in GET /v1/stats.
type ModelStats struct {
	Model    string `json:"model"`
	Updates  int64  `json:"updates"`
	PosSeen  int64  `json:"positives_seen"`
	NegSeen  int64  `json:"negatives_seen"`
	Replaced int64  `json:"trees_replaced"`
	Nodes    int    `json:"nodes"`
	Tracked  int    `json:"tracked_disks"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	var out []ModelStats
	for _, model := range s.fleet.Models() {
		p := s.fleet.Predictor(model)
		st := p.Stats()
		out = append(out, ModelStats{
			Model:    model,
			Updates:  st.Updates,
			PosSeen:  st.PosSeen,
			NegSeen:  st.NegSeen,
			Replaced: st.Replaced,
			Nodes:    st.Nodes,
			Tracked:  p.TrackedDisks(),
		})
	}
	s.mu.Unlock()
	writeJSON(w, out)
}

func (s *Server) handleImportance(w http.ResponseWriter, r *http.Request) {
	model := r.URL.Query().Get("model")
	s.mu.Lock()
	p := s.fleet.Predictor(model)
	var imp []FeatureImportance
	if p != nil {
		imp = p.FeatureImportance()
	}
	s.mu.Unlock()
	if p == nil {
		http.Error(w, "unknown model", http.StatusNotFound)
		return
	}
	writeJSON(w, imp)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
