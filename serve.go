package orfdisk

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"orfdisk/internal/metrics"
)

// Server exposes an Engine behind an HTTP API, the deployment form a
// data center would actually run: collectors POST daily SMART
// snapshots, the engine's per-model shard workers update the online
// forests, and every snapshot is answered with the live risk
// prediction. Requests for different drive models are processed in
// parallel; overload on one model's mailbox sheds with 503 instead of
// queueing unboundedly.
//
// Endpoints:
//
//	POST /v1/observe        {serial, model, day, failed, norm:{id:val}, raw:{id:val}}
//	                        -> {serial, day, score, risky, final}
//	POST /v1/observe/batch  {observations:[...]} -> [{serial, day, score, risky, final, error?}]
//	POST /v1/predict        {model|serial, norm, raw, values?}
//	                        -> {model, score, risky, updates_behind, snapshot_age_seconds}
//	POST /v1/predict/batch  {model, items:[{serial?, norm, raw, values?}...]}
//	                        -> {model, updates_behind, snapshot_age_seconds, results:[...]}
//	POST /v1/retire         {serial}
//	GET  /v1/stats          -> per-model forest statistics
//	GET  /v1/models         -> live shards (model, tracked disks, updates)
//	GET  /v1/importance?model=M -> ranked feature importance
//	GET  /v1/replication    -> {role, applied_seq, lag_records, lag_seconds, ...}
//	POST /v1/promote        promote a follower replica to leader (idempotent)
//	POST /v1/demote         fence this instance: stop accepting writes (idempotent)
//	POST /v1/follow         {addr} re-point this follower at a new leader
//	                        (501 unless the entrypoint wired SetFollowControl)
//	GET  /healthz           -> 200 ok (process is up)
//	GET  /readyz            -> 200 ready, or 503 {"error": reason} while a
//	                           follower's replication lag exceeds its limit
//	GET  /metrics           -> Prometheus text exposition
//
// On a follower replica (EngineConfig.Follower) the write endpoints
// (/v1/observe, /v1/observe/batch, /v1/retire) answer 409 Conflict with
// ErrNotLeader; the read path stays fully live, serving warm frozen
// snapshots whose staleness is the replication lag plus the freeze
// cadence.
//
// The /v1/predict endpoints are the fleet-dashboard read path: pure
// reads served from each model's published frozen snapshot (no WAL
// append, no labeling-queue rotation, no shard mailbox hop, no locks),
// so scoring throughput scales with reader cores independently of
// ingest. Scores may trail ingest by up to the publication cadence
// (EngineConfig.FreezeEvery / FreezeInterval); every response carries
// updates_behind and snapshot_age_seconds so callers see the staleness
// they got.
//
// Request bodies are limited to 1 MiB — except /v1/observe/batch, which
// has its own configurable byte and item limits (SetBatchLimits; 413 on
// oversize bodies, 400 on too many items) — and decoded strictly
// (unknown fields are rejected). All errors are JSON: {"error": "..."}.
//
// Every endpoint is instrumented: http_requests_total{path,code} and
// http_request_seconds{path} land in the engine's metrics registry
// alongside the engine_*, wal_* and engine_model_* families, all served
// at GET /metrics. Requests are logged through the engine's logger at
// Debug (5xx at Warn).
type Server struct {
	eng *Engine
	log *slog.Logger

	batchMaxBytes int64
	batchMaxItems int

	requests *metrics.CounterVec
	latency  *metrics.HistogramVec

	followCtl func(addr string) error
}

// maxBodyBytes caps every request body read by the server, except
// POST /v1/observe/batch which carries many observations and gets its
// own (larger, configurable) cap.
const maxBodyBytes = 1 << 20

// Batch endpoint defaults; override with SetBatchLimits.
const (
	// DefaultBatchMaxBytes is the default POST /v1/observe/batch body
	// cap (8 MiB — roughly 10k observations with full catalog vectors).
	DefaultBatchMaxBytes = 8 << 20
	// DefaultBatchMaxItems is the default per-request observation limit.
	DefaultBatchMaxItems = 4096
)

// NewServer creates a Server around a fresh non-durable Engine with the
// given predictor configuration. Use NewServerWithEngine for a durable
// (WAL + snapshot) deployment.
func NewServer(cfg Config) *Server {
	eng, err := NewEngine(EngineConfig{Predictor: cfg})
	if err != nil {
		// Unreachable: engine creation without a DataDir cannot fail.
		panic(err)
	}
	return NewServerWithEngine(eng)
}

// NewServerWithEngine wraps an existing engine (typically a durable one
// created with EngineConfig.DataDir). The server shares the engine's
// metrics registry and logger.
func NewServerWithEngine(e *Engine) *Server {
	reg := e.MetricsRegistry()
	return &Server{
		eng:           e,
		log:           e.log,
		batchMaxBytes: DefaultBatchMaxBytes,
		batchMaxItems: DefaultBatchMaxItems,
		requests: reg.CounterVec("http_requests_total",
			"HTTP requests served, by endpoint and status code.", "path", "code"),
		latency: reg.HistogramVec("http_request_seconds",
			"HTTP request latency in seconds, by endpoint.", nil, "path"),
	}
}

// SetBatchLimits tunes POST /v1/observe/batch: maxBytes caps the request
// body (oversize requests get 413), maxItems caps observations per
// request (larger batches get 400). Non-positive values keep the current
// setting. Call before Handler; the limits are read per-request without
// locking.
func (s *Server) SetBatchLimits(maxBytes int64, maxItems int) {
	if maxBytes > 0 {
		s.batchMaxBytes = maxBytes
	}
	if maxItems > 0 {
		s.batchMaxItems = maxItems
	}
}

// SetFollowControl wires POST /v1/follow to fn, which must re-point
// this instance's replication client at the given leader address
// (tearing down any existing stream first). Without it the endpoint
// answers 501. Call before Handler; the process entrypoint (orfserve)
// installs one on follower instances so a routing tier can re-point
// survivors after a failover instead of requiring a restart.
func (s *Server) SetFollowControl(fn func(addr string) error) { s.followCtl = fn }

// Engine returns the serving engine behind the API.
func (s *Server) Engine() *Engine { return s.eng }

// Close drains the engine (final snapshot included when durable).
func (s *Server) Close() error { return s.eng.Close() }

// ObservationRequest is the POST /v1/observe payload (and the element
// type of POST /v1/observe/batch).
type ObservationRequest struct {
	Serial string          `json:"serial"`
	Model  string          `json:"model"`
	Day    int             `json:"day"`
	Failed bool            `json:"failed"`
	Norm   map[int]float64 `json:"norm"`
	Raw    map[int]float64 `json:"raw"`
	// Values optionally supplies the full 48-feature catalog vector
	// directly, overriding Norm/Raw.
	Values []float64 `json:"values,omitempty"`
}

func (r ObservationRequest) fleetObservation() FleetObservation {
	values := r.Values
	if values == nil {
		values = PackValues(r.Norm, r.Raw)
	}
	return FleetObservation{
		Model: r.Model,
		Observation: Observation{
			Serial: r.Serial, Day: r.Day, Failed: r.Failed, Values: values,
		},
	}
}

// PredictionResponse is the POST /v1/observe reply.
type PredictionResponse struct {
	Serial string  `json:"serial"`
	Day    int     `json:"day"`
	Score  float64 `json:"score"`
	Risky  bool    `json:"risky"`
	Final  bool    `json:"final"`
}

func predictionResponse(pred Prediction) PredictionResponse {
	resp := PredictionResponse{
		Serial: pred.Serial, Day: pred.Day, Risky: pred.Risky, Final: pred.Final,
	}
	if !pred.Final { // NaN is not valid JSON
		resp.Score = pred.Score
	}
	return resp
}

// BatchRequest is the POST /v1/observe/batch payload.
type BatchRequest struct {
	Observations []ObservationRequest `json:"observations"`
}

// BatchItemResponse is one element of the POST /v1/observe/batch reply.
type BatchItemResponse struct {
	PredictionResponse
	Error string `json:"error,omitempty"`
}

// ModelInfo is one live shard's entry in GET /v1/models.
type ModelInfo struct {
	Model        string `json:"model"`
	TrackedDisks int    `json:"tracked_disks"`
	Updates      int64  `json:"updates"`
}

// Handler returns the http.Handler serving the API, /metrics included.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.handle(mux, http.MethodPost, "/v1/observe", s.handleObserve)
	s.handle(mux, http.MethodPost, "/v1/observe/batch", s.handleObserveBatch)
	s.handle(mux, http.MethodPost, "/v1/predict", s.handlePredict)
	s.handle(mux, http.MethodPost, "/v1/predict/batch", s.handlePredictBatch)
	s.handle(mux, http.MethodPost, "/v1/retire", s.handleRetire)
	s.handle(mux, http.MethodGet, "/v1/stats", s.handleStats)
	s.handle(mux, http.MethodGet, "/v1/models", s.handleModels)
	s.handle(mux, http.MethodGet, "/v1/importance", s.handleImportance)
	s.handle(mux, http.MethodGet, "/v1/replication", s.handleReplication)
	s.handle(mux, http.MethodPost, "/v1/promote", s.handlePromote)
	s.handle(mux, http.MethodPost, "/v1/demote", s.handleDemote)
	s.handle(mux, http.MethodPost, "/v1/follow", s.handleFollow)
	s.handle(mux, http.MethodGet, "/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.handle(mux, http.MethodGet, "/readyz", s.handleReady)
	s.handle(mux, http.MethodGet, "/metrics", s.eng.MetricsRegistry().Handler().ServeHTTP)
	return mux
}

// statusWriter captures the status code a handler writes so the
// middleware can label metrics and logs with it.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// handle registers h for exactly one method, answering anything else
// with a JSON 405 and an Allow header (the default mux 405 is plain
// text, and only for patterns that declare a method), and wraps it in
// the metrics/logging middleware: count and time every request by the
// registered pattern — never by the raw URL, which would explode label
// cardinality.
func (s *Server) handle(mux *http.ServeMux, method, pattern string, h http.HandlerFunc) {
	hist := s.latency.With(pattern)
	mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		if r.Method != method {
			sw.Header().Set("Allow", method)
			writeError(sw, http.StatusMethodNotAllowed, "method not allowed")
		} else {
			h(sw, r)
		}
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		elapsed := time.Since(start)
		s.requests.With(pattern, strconv.Itoa(sw.status)).Inc()
		hist.Observe(elapsed.Seconds())
		lvl := slog.LevelDebug
		if sw.status >= 500 {
			lvl = slog.LevelWarn
		}
		s.log.Log(r.Context(), lvl, "http request",
			"method", r.Method, "path", pattern, "status", sw.status,
			"elapsed", elapsed, "remote", r.RemoteAddr)
	})
}

// decodeBody strictly decodes a JSON request body capped at the default
// single-request size.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	return decodeBodyCapped(w, r, v, maxBodyBytes)
}

// decodeBodyCapped strictly decodes a JSON request body capped at limit
// bytes.
func decodeBodyCapped(w http.ResponseWriter, r *http.Request, v any, limit int64) error {
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func writeDecodeError(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("body exceeds %d bytes", tooBig.Limit))
		return
	}
	writeError(w, http.StatusBadRequest, "bad request: "+err.Error())
}

// ingestStatus maps an engine ingest error to an HTTP status.
func ingestStatus(err error) int {
	if errors.Is(err, ErrBusy) || errors.Is(err, ErrSyncUnacked) {
		return http.StatusServiceUnavailable
	}
	if errors.Is(err, ErrNotLeader) {
		// 409: the request is fine, this replica's role is the conflict.
		// Routers retry against the leader.
		return http.StatusConflict
	}
	return http.StatusUnprocessableEntity
}

// writeIngestError maps a write-path engine error onto the wire. The
// 503s carry Retry-After so routers and loaders back off instead of
// hot-looping on a saturated shard; a synchronous-commit timeout
// additionally marks the response X-Orf-Write-Applied, because the
// record IS durable on this leader — a blind retry would apply it
// twice.
func writeIngestError(w http.ResponseWriter, err error) {
	status := ingestStatus(err)
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	if errors.Is(err, ErrSyncUnacked) {
		w.Header().Set("X-Orf-Write-Applied", "true")
	}
	writeError(w, status, err.Error())
}

// handleReady answers readiness probes: distinct from /healthz (which
// only proves the process is up), /readyz reports whether this instance
// should receive traffic. A follower that has not caught up to within
// its configured lag answers 503 so load balancers keep it out of
// rotation until replication converges.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	ok, reason := s.eng.Ready()
	if !ok {
		writeError(w, http.StatusServiceUnavailable, reason)
		return
	}
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleReplication(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.eng.Replication())
}

// handlePromote flips a follower into a leader (a no-op on a leader, so
// retried promotions are safe). The caller — a routing tier's failover,
// or an operator — is responsible for fencing the old leader first.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	s.eng.Promote()
	writeJSON(w, s.eng.Replication())
}

// handleDemote fences this instance: it refuses writes immediately and
// reports not-ready until restarted as a real follower. The routing
// tier calls it on a suspect old leader around a promotion so a
// resurrected process cannot fork the log with direct writes.
func (s *Server) handleDemote(w http.ResponseWriter, r *http.Request) {
	s.eng.Demote()
	writeJSON(w, s.eng.Replication())
}

// handleFollow re-points this follower's replication stream at a new
// leader address — the routing tier calls it on surviving followers
// after a promotion so they resume shipping from the new leader
// without a process restart.
func (s *Server) handleFollow(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Addr string `json:"addr"`
	}
	if err := decodeBody(w, r, &req); err != nil {
		writeDecodeError(w, err)
		return
	}
	if req.Addr == "" {
		writeError(w, http.StatusBadRequest, "bad request: missing addr")
		return
	}
	if s.followCtl == nil {
		writeError(w, http.StatusNotImplemented,
			"follow control is not wired on this instance")
		return
	}
	if err := s.followCtl(req.Addr); err != nil {
		writeError(w, http.StatusConflict, err.Error())
		return
	}
	writeJSON(w, s.eng.Replication())
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	var req ObservationRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeDecodeError(w, err)
		return
	}
	if req.Serial == "" {
		writeError(w, http.StatusBadRequest, "bad request: missing serial")
		return
	}
	pred, err := s.eng.Ingest(req.fleetObservation())
	if err != nil {
		writeIngestError(w, err)
		return
	}
	writeJSON(w, predictionResponse(pred))
}

func (s *Server) handleObserveBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := decodeBodyCapped(w, r, &req, s.batchMaxBytes); err != nil {
		writeDecodeError(w, err)
		return
	}
	if len(req.Observations) > s.batchMaxItems {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch carries %d observations, limit %d",
				len(req.Observations), s.batchMaxItems))
		return
	}
	batch := make([]FleetObservation, len(req.Observations))
	for i, o := range req.Observations {
		batch[i] = o.fleetObservation()
	}
	results := s.eng.IngestBatch(batch)
	out := make([]BatchItemResponse, len(results))
	for i, res := range results {
		if res.Err != nil {
			out[i] = BatchItemResponse{
				PredictionResponse: PredictionResponse{
					Serial: req.Observations[i].Serial, Day: req.Observations[i].Day,
				},
				Error: res.Err.Error(),
			}
			continue
		}
		out[i] = BatchItemResponse{PredictionResponse: predictionResponse(res.Prediction)}
	}
	// A synchronous-commit timeout fails the whole batch's guarantee at
	// once; surface it at the response level too (503 + Retry-After) so
	// clients that only look at the status back off, while the per-item
	// body still reports exactly which records are durable-but-unacked.
	status := http.StatusOK
	for i := range results {
		if errors.Is(results[i].Err, ErrSyncUnacked) {
			status = http.StatusServiceUnavailable
			w.Header().Set("Retry-After", "1")
			w.Header().Set("X-Orf-Write-Applied", "true")
			break
		}
	}
	writeJSONStatus(w, status, out)
}

func (s *Server) handleRetire(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Serial string `json:"serial"`
	}
	if err := decodeBody(w, r, &req); err != nil {
		writeDecodeError(w, err)
		return
	}
	if req.Serial == "" {
		writeError(w, http.StatusBadRequest, "bad request: missing serial")
		return
	}
	if err := s.eng.Retire(req.Serial); err != nil {
		writeIngestError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// ModelStats is one model's entry in GET /v1/stats.
type ModelStats struct {
	Model    string `json:"model"`
	Updates  int64  `json:"updates"`
	PosSeen  int64  `json:"positives_seen"`
	NegSeen  int64  `json:"negatives_seen"`
	Replaced int64  `json:"trees_replaced"`
	Nodes    int    `json:"nodes"`
	Tracked  int    `json:"tracked_disks"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.eng.Stats())
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	out := []ModelInfo{}
	for _, ms := range s.eng.Stats() {
		out = append(out, ModelInfo{
			Model:        ms.Model,
			TrackedDisks: ms.Tracked,
			Updates:      ms.Updates,
		})
	}
	writeJSON(w, out)
}

func (s *Server) handleImportance(w http.ResponseWriter, r *http.Request) {
	model := r.URL.Query().Get("model")
	imp, ok := s.eng.Importance(model)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown model")
		return
	}
	writeJSON(w, imp)
}

func writeJSON(w http.ResponseWriter, v any) {
	writeJSONStatus(w, http.StatusOK, v)
}

// writeJSONStatus encodes v fully before touching the connection: an
// encode failure becomes a clean 500 instead of a 200 header glued to
// a partial body with a plaintext error appended (the old
// Encode-then-http.Error sequence).
func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encoding response: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	b = append(b, '\n')
	w.Write(b) //nolint:errcheck // header already sent; nothing to salvage
}

func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg}) //nolint:errcheck
}
