package orfdisk

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"orfdisk/internal/replica"
)

// Automatic follower re-seed. A follower whose resume position the
// leader has truncated past (ErrResumeTooOld), or whose log diverged
// from the leader's (ErrFollowerAhead), can no longer catch up from
// the record stream. Instead of parking until an operator hand-copies
// the data dir, the replication client asks the leader for a full
// state transfer:
//
//	leader:   Engine.Seed (replica.SeedProvider) — snapshot, seal the
//	          WAL tail, hand open handles on the snapshot set + cursor
//	          file + WAL segments to the source, which streams them.
//	follower: Engine.BeginSeed / Engine.CommitSeed (replica.SeedSink) —
//	          download into DataDir/seed-staging, then swap: write a
//	          durable commit marker, close the WAL, retire every shard
//	          worker (pool.Reset), rename the staged files over the old
//	          state, delete state files the seed does not replace, and
//	          re-run recovery from the installed set.
//
// The commit marker makes the swap crash-safe: recovery finds it and
// finishes the install from the staged files before reading any state,
// so a kill at any point yields either the old state or the complete
// new one, never a mix. Reads degrade gracefully during the swap (a
// model briefly reports unknown); writes were already refused — this
// is a follower.

const (
	seedStagingName = "seed-staging"
	seedCommitName  = "seed-commit"
	seedCommitMagic = "OSC1"
	walDirName      = "wal"
	walSuffix       = ".wal"
)

var errNotFollowerSeed = errors.New("orfdisk: only a follower installs seeds")

// Seed implements replica.SeedProvider: it snapshots (shrinking the
// WAL tail to ship), then collects open handles on every file a fresh
// follower needs. The handles stay readable for the life of the
// transfer even if a later snapshot unlinks a segment — truncation
// uses os.Remove, which never disturbs an open descriptor — so the set
// is consistent without holding any lock while it streams.
func (e *Engine) Seed() (files []replica.SeedFile, head uint64, err error) {
	if e.wal == nil {
		return nil, 0, errors.New("orfdisk: seeding requires a DataDir")
	}
	if err := e.Snapshot(); err != nil {
		return nil, 0, err
	}
	// Under snapMu no snapshot pass can rename or truncate between the
	// tail seal and the opens below.
	e.snapMu.Lock()
	defer e.snapMu.Unlock()
	tailStart, tailSize, head, err := e.wal.SealTail()
	if err != nil {
		return nil, 0, err
	}
	defer func() {
		if err != nil {
			for _, sf := range files {
				sf.File.Close()
			}
			files = nil
		}
	}()
	add := func(name, path string, capSize int64) error {
		f, oerr := os.Open(path)
		if oerr != nil {
			return oerr
		}
		st, serr := f.Stat()
		if serr != nil {
			f.Close()
			return serr
		}
		size := st.Size()
		if capSize >= 0 && capSize < size {
			size = capSize
		}
		files = append(files, replica.SeedFile{Name: name, File: f, Size: size})
		return nil
	}
	entries, err := os.ReadDir(e.cfg.DataDir)
	if err != nil {
		return nil, 0, err
	}
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
			continue
		}
		if err := add(name, filepath.Join(e.cfg.DataDir, name), -1); err != nil {
			return nil, 0, err
		}
	}
	cursorPath := filepath.Join(e.cfg.DataDir, cursorFileName)
	if _, serr := os.Stat(cursorPath); serr == nil {
		if err := add(cursorFileName, cursorPath, -1); err != nil {
			return nil, 0, err
		}
	}
	walDir := filepath.Join(e.cfg.DataDir, walDirName)
	wents, err := os.ReadDir(walDir)
	if err != nil {
		return nil, 0, err
	}
	for _, ent := range wents {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, walSuffix) {
			continue
		}
		firstSeq, perr := strconv.ParseUint(strings.TrimSuffix(name, walSuffix), 10, 64)
		if perr != nil {
			continue
		}
		// Keep the sealed tail segment even when it holds no durable
		// records yet (an empty or freshly-rotated leader): without it
		// an empty leader produces a zero-file seed set that CommitSeed
		// rejects, and a diverged follower retries the seed forever.
		if firstSeq > head && firstSeq != tailStart {
			continue // rotated in after the tail seal; past the cut
		}
		capSize := int64(-1)
		if firstSeq == tailStart {
			capSize = tailSize // only the sealed (durable) prefix
		}
		if err := add(walDirName+"/"+name, filepath.Join(walDir, name), capSize); err != nil {
			return nil, 0, err
		}
	}
	return files, head, nil
}

// BeginSeed implements replica.SeedSink: it provides a fresh staging
// directory inside the data dir (same filesystem, so the install can
// rename instead of copy).
func (e *Engine) BeginSeed() (string, error) {
	if !e.follower.Load() {
		return "", errNotFollowerSeed
	}
	dir := filepath.Join(e.cfg.DataDir, seedStagingName)
	if err := os.RemoveAll(dir); err != nil {
		return "", err
	}
	if err := os.MkdirAll(filepath.Join(dir, walDirName), 0o755); err != nil {
		return "", err
	}
	return dir, nil
}

// CommitSeed implements replica.SeedSink: it atomically replaces the
// follower's durable state with the staged seed set and reloads the
// engine from it, exactly like a process restart on the new files.
// Runs on the replication client's goroutine — the same goroutine that
// calls ApplyReplicated, so no replicated apply can race the swap.
func (e *Engine) CommitSeed(dir string) error {
	if !e.follower.Load() {
		return errNotFollowerSeed
	}
	var manifest []string
	err := filepath.WalkDir(dir, func(p string, d fs.DirEntry, werr error) error {
		if werr != nil {
			return werr
		}
		if d.IsDir() {
			return nil
		}
		rel, rerr := filepath.Rel(dir, p)
		if rerr != nil {
			return rerr
		}
		manifest = append(manifest, filepath.ToSlash(rel))
		return nil
	})
	if err != nil {
		return err
	}
	if len(manifest) == 0 {
		return errors.New("orfdisk: seed staging directory is empty")
	}
	sort.Strings(manifest)

	// Make every staged directory entry durable BEFORE the commit
	// marker can exist. The download fsyncs each file's contents, but a
	// crash just past the marker could still lose the staging dirents;
	// recovery would then treat each missing staged source as "moved by
	// an interrupted earlier pass" and finish the install with empty or
	// partial state — breaking the marker's all-or-nothing promise.
	dirs := map[string]struct{}{dir: {}}
	for _, name := range manifest {
		d := filepath.Dir(filepath.Join(dir, filepath.FromSlash(name)))
		for d != dir && strings.HasPrefix(d, dir+string(filepath.Separator)) {
			dirs[d] = struct{}{}
			d = filepath.Dir(d)
		}
	}
	for d := range dirs {
		if err := syncDir(d); err != nil {
			return err
		}
	}

	// Serialize against snapshot passes for the whole swap: Snapshot
	// reads e.wal and the shard set, both replaced below.
	e.snapMu.Lock()
	defer e.snapMu.Unlock()

	// Durable commit point. From here a crash finishes the install on
	// restart instead of recovering half-swapped state.
	if err := e.writeSeedMarker(manifest); err != nil {
		return err
	}
	if err := e.wal.Close(); err != nil {
		return err
	}
	if err := e.pool.Reset(); err != nil {
		return err
	}
	if err := e.installSeedFiles(manifest); err != nil {
		return err
	}

	// Drop every in-memory trace of the old state, then recover from
	// the installed files.
	e.mu.Lock()
	e.modelOf = make(map[string]string)
	e.mu.Unlock()
	e.recovered = make(map[string]*shardState)
	clear(e.snapped)
	e.bf.mu.Lock()
	e.bf.valid, e.bf.cur, e.bf.rowsAfter, e.bf.seq, e.bf.pendingLow =
		false, BackfillCursor{}, 0, 0, 0
	e.bf.mu.Unlock()
	if err := e.recover(); err != nil {
		return err
	}
	// A model that existed before the seed but not in it would keep
	// serving its last frozen snapshot forever; retract those slots so
	// the read path reports the model unknown instead.
	live := make(map[string]struct{})
	for _, m := range e.pool.Keys() {
		live[m] = struct{}{}
	}
	e.frozen.Range(func(k, v any) bool {
		if _, ok := live[k.(string)]; !ok {
			v.(*frozenSlot).pub.Store(nil)
		}
		return true
	})
	if err := e.refreezeAll(); err != nil {
		return err
	}
	e.replApplied.Store(e.wal.NextSeq() - 1)
	e.log.Info("seed installed",
		"files", len(manifest), "resume_after", e.replApplied.Load())
	return nil
}

// writeSeedMarker durably records the manifest of a staged seed set;
// its existence means "the staged files are the state now" — recovery
// finishes the swap from it after a crash.
func (e *Engine) writeSeedMarker(manifest []string) error {
	var buf bytes.Buffer
	buf.WriteString(seedCommitMagic)
	buf.WriteByte('\n')
	for _, name := range manifest {
		buf.WriteString(name)
		buf.WriteByte('\n')
	}
	final := filepath.Join(e.cfg.DataDir, seedCommitName)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write(buf.Bytes())
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return werr
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	return syncDir(e.cfg.DataDir)
}

// installSeedFiles performs the on-disk swap: delete state files the
// manifest does not replace, rename the staged files in, then clear
// the marker and staging dir. Idempotent — a rerun after a crash skips
// files an earlier pass already moved — so recovery can call it with
// the marker's manifest at any interruption point.
func (e *Engine) installSeedFiles(manifest []string) error {
	dataDir := e.cfg.DataDir
	staging := filepath.Join(dataDir, seedStagingName)
	inSet := make(map[string]struct{}, len(manifest))
	for _, name := range manifest {
		inSet[name] = struct{}{}
	}
	entries, err := os.ReadDir(dataDir)
	if err != nil {
		return err
	}
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() {
			continue
		}
		isState := (strings.HasPrefix(name, snapPrefix) && strings.HasSuffix(name, snapSuffix)) ||
			name == cursorFileName
		if !isState {
			continue
		}
		if _, ok := inSet[name]; ok {
			continue
		}
		if err := os.Remove(filepath.Join(dataDir, name)); err != nil {
			return err
		}
	}
	walDir := filepath.Join(dataDir, walDirName)
	if err := os.MkdirAll(walDir, 0o755); err != nil {
		return err
	}
	wents, err := os.ReadDir(walDir)
	if err != nil {
		return err
	}
	for _, ent := range wents {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, walSuffix) {
			continue
		}
		if _, ok := inSet[walDirName+"/"+name]; ok {
			continue
		}
		if err := os.Remove(filepath.Join(walDir, name)); err != nil {
			return err
		}
	}
	for _, name := range manifest {
		src := filepath.Join(staging, filepath.FromSlash(name))
		dst := filepath.Join(dataDir, filepath.FromSlash(name))
		if _, serr := os.Stat(src); errors.Is(serr, fs.ErrNotExist) {
			continue // moved by an interrupted earlier pass
		}
		if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			return err
		}
		if err := os.Rename(src, dst); err != nil {
			return err
		}
	}
	if err := syncDir(walDir); err != nil {
		return err
	}
	if err := syncDir(dataDir); err != nil {
		return err
	}
	if err := os.Remove(filepath.Join(dataDir, seedCommitName)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	if err := os.RemoveAll(staging); err != nil {
		return err
	}
	return syncDir(dataDir)
}

// completeSeedInstall runs at the top of recovery: a commit marker
// means a seed install was interrupted — finish it from the staged
// files before any state file is read. A staging dir without a marker
// is a download that never committed; discard it.
func (e *Engine) completeSeedInstall() error {
	dataDir := e.cfg.DataDir
	b, err := os.ReadFile(filepath.Join(dataDir, seedCommitName))
	if errors.Is(err, fs.ErrNotExist) {
		return os.RemoveAll(filepath.Join(dataDir, seedStagingName))
	}
	if err != nil {
		return err
	}
	lines := strings.Split(strings.TrimRight(string(b), "\n"), "\n")
	if len(lines) < 2 || lines[0] != seedCommitMagic {
		return fmt.Errorf("orfdisk: malformed seed commit marker")
	}
	manifest := lines[1:]
	for _, name := range manifest {
		if name == "" || strings.HasPrefix(name, "/") || strings.Contains(name, "..") {
			return fmt.Errorf("orfdisk: seed commit marker names %q", name)
		}
	}
	e.log.Warn("finishing interrupted seed install", "files", len(manifest))
	return e.installSeedFiles(manifest)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
