package orfdisk

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// predictTestServer stands up a server with a few observed disks so the
// predict endpoints have snapshots and routing entries to hit.
func predictTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := newTestServer(t)
	for day := 0; day < 6; day++ {
		postJSON(t, ts.URL+"/v1/observe", ObservationRequest{
			Serial: "d1", Model: "ST4000", Day: day,
			Norm: map[int]float64{187: 100}, Raw: map[int]float64{187: 0},
		})
	}
	return ts
}

func TestServerPredict(t *testing.T) {
	ts := predictTestServer(t)

	// By model name: the lock-free path.
	resp := postJSON(t, ts.URL+"/v1/predict", PredictRequest{
		Model: "ST4000", Norm: map[int]float64{187: 95}, Raw: map[int]float64{187: 12},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d", resp.StatusCode)
	}
	var out PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Model != "ST4000" || out.Score < 0 || out.Score > 1 {
		t.Fatalf("response %+v", out)
	}
	if out.UpdatesBehind < 0 || out.SnapshotAgeSeconds < 0 {
		t.Fatalf("staleness fields %+v", out)
	}

	// By serial: resolved through the routing memory, echoed back.
	resp = postJSON(t, ts.URL+"/v1/predict", PredictRequest{
		Serial: "d1", Norm: map[int]float64{187: 95},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict-by-serial status %d", resp.StatusCode)
	}
	var bySerial PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&bySerial); err != nil {
		t.Fatal(err)
	}
	if bySerial.Model != "ST4000" || bySerial.Serial != "d1" {
		t.Fatalf("serial response %+v", bySerial)
	}

	for _, tc := range []struct {
		name string
		req  PredictRequest
		code int
	}{
		{"unknown model", PredictRequest{Model: "NOPE"}, http.StatusNotFound},
		{"unknown serial", PredictRequest{Serial: "ghost"}, http.StatusNotFound},
		{"unaddressed", PredictRequest{}, http.StatusBadRequest},
		{"short vector", PredictRequest{Model: "ST4000", Values: []float64{1, 2}}, http.StatusBadRequest},
	} {
		if resp := postJSON(t, ts.URL+"/v1/predict", tc.req); resp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.code)
		}
	}
}

func TestServerPredictBatch(t *testing.T) {
	ts := predictTestServer(t)

	resp := postJSON(t, ts.URL+"/v1/predict/batch", PredictBatchRequest{
		Model: "ST4000",
		Items: []PredictItem{
			{Serial: "d1", Norm: map[int]float64{187: 95}},
			{Values: []float64{1, 2}}, // short: fails alone
			{Raw: map[int]float64{187: 40}},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	var out PredictBatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Model != "ST4000" || len(out.Results) != 3 {
		t.Fatalf("response %+v", out)
	}
	if out.Results[0].Serial != "d1" || out.Results[0].Error != "" {
		t.Fatalf("item 0 %+v", out.Results[0])
	}
	if out.Results[1].Error == "" {
		t.Fatal("short vector item did not fail")
	}
	if out.Results[2].Error != "" {
		t.Fatalf("item 2 %+v", out.Results[2])
	}

	if resp := postJSON(t, ts.URL+"/v1/predict/batch",
		PredictBatchRequest{Items: []PredictItem{{}}}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing model: status %d", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/v1/predict/batch",
		PredictBatchRequest{Model: "NOPE"}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model: status %d", resp.StatusCode)
	}
}

// TestServerPredictMetrics checks the read path shows up in /metrics.
func TestServerPredictMetrics(t *testing.T) {
	ts := predictTestServer(t)
	postJSON(t, ts.URL+"/v1/predict", PredictRequest{Model: "ST4000"})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"predict_requests_total",
		"engine_frozen_publishes_total",
		`frozen_snapshot_age_seconds{model="ST4000"}`,
		`frozen_updates_behind{model="ST4000"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}
