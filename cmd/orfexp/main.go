// Command orfexp regenerates the tables and figures of the paper's
// evaluation section on the synthetic fleet.
//
// Usage:
//
//	orfexp -exp table3                 # one experiment
//	orfexp -exp all                    # everything
//	orfexp -exp fig2 -goodscale 0.05   # bigger fleet
//
// Experiments: table1 table2 table3 table4 fig2 fig3 fig4 fig5 fig6 fig7.
// Each prints the same rows/series the paper reports; absolute numbers
// come from the simulator, so shapes (who wins, by how much, where the
// curves bend) are the reproduction target, as recorded in
// EXPERIMENTS.md.
package main

import (
	"bufio"
	"encoding/csv"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"orfdisk/internal/core"
	"orfdisk/internal/dataset"
	"orfdisk/internal/dtree"
	"orfdisk/internal/eval"
	"orfdisk/internal/forest"
	"orfdisk/internal/smart"
	"orfdisk/internal/svm"
)

type config struct {
	exp       string
	goodScale float64
	failScale float64
	seed      uint64
	reps      int
	trees     int
	quick     bool
	dataCSV   string // when set, build corpora from this CSV instead of the simulator
	csvDir    string // when set, also write each figure's series as CSV here
}

func main() {
	var cfg config
	var seed uint64
	flag.StringVar(&cfg.exp, "exp", "all", "experiment id: table1..table4, fig2..fig7, ablation, drift, horizon, all")
	flag.Float64Var(&cfg.goodScale, "goodscale", 0.02, "scale of the good-disk population vs Table 1")
	flag.Float64Var(&cfg.failScale, "failscale", 0.10, "scale of the failed-disk population vs Table 1")
	flag.Uint64Var(&seed, "seed", 20180813, "master random seed")
	flag.IntVar(&cfg.reps, "reps", 3, "repetitions for the hyper-parameter tables")
	flag.IntVar(&cfg.trees, "trees", 30, "ensemble size T")
	flag.BoolVar(&cfg.quick, "quick", false, "shrink everything for a fast smoke run")
	flag.StringVar(&cfg.dataCSV, "data", "", "Backblaze-format CSV to run on instead of the simulator (real field data)")
	flag.StringVar(&cfg.csvDir, "csvdir", "", "directory to write plot-ready CSVs of each figure's series")
	flag.Parse()
	cfg.seed = seed
	if cfg.quick {
		cfg.goodScale, cfg.failScale, cfg.reps, cfg.trees = 0.008, 0.05, 1, 15
	}

	run := func(id string, fn func(config)) {
		if cfg.exp != "all" && cfg.exp != id {
			return
		}
		start := time.Now()
		fmt.Printf("==================== %s ====================\n", strings.ToUpper(id))
		fn(cfg)
		fmt.Printf("[%s done in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}

	run("table1", table1)
	run("table2", table2)
	run("table3", table3)
	run("table4", table4)
	run("fig2", func(c config) { figConvergence(c, profileSTA(c), "Figure 2: FDR of ORF vs offline models, STA") })
	run("fig3", func(c config) { figConvergence(c, profileSTB(c), "Figure 3: FDR of ORF vs offline models, STB") })
	run("fig4", func(c config) {
		figLongTerm(c, profileSTA(c), 6, "FAR", "Figure 4: FARs of ORF and monthly updated RFs, STA")
	})
	run("fig5", func(c config) {
		figLongTerm(c, profileSTB(c), 4, "FAR", "Figure 5: FARs of ORF and monthly updated RFs, STB")
	})
	run("fig6", func(c config) {
		figLongTerm(c, profileSTA(c), 6, "FDR", "Figure 6: FDRs of ORF and monthly updated RFs, STA")
	})
	run("fig7", func(c config) {
		figLongTerm(c, profileSTB(c), 4, "FDR", "Figure 7: FDRs of ORF and monthly updated RFs, STB")
	})
	run("ablation", ablation)
	run("drift", drift)
	run("horizon", horizon)

	if flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "unexpected arguments:", flag.Args())
		os.Exit(2)
	}
}

func profileSTA(c config) dataset.Profile {
	p := dataset.STA(1)
	p.GoodDisks = scale(34535, c.goodScale)
	p.FailedDisks = scale(1996, c.failScale)
	if c.quick {
		p.Months = 21
	}
	return p
}

func profileSTB(c config) dataset.Profile {
	p := dataset.STB(1)
	p.GoodDisks = scale(2898, c.goodScale*3) // STB is a small population
	p.FailedDisks = scale(1357, c.failScale)
	return p
}

func scale(n int, s float64) int {
	v := int(float64(n)*s + 0.5)
	if v < 10 {
		v = 10
	}
	return v
}

func buildCorpus(c config, p dataset.Profile) *eval.Corpus {
	var corpus *eval.Corpus
	var err error
	if c.dataCSV != "" {
		var f *os.File
		f, err = os.Open(c.dataCSV)
		if err == nil {
			defer f.Close()
			corpus, err = eval.BuildCorpusFromCSV(bufio.NewReaderSize(f, 1<<20),
				eval.SampleOptions{Seed: c.seed})
		}
	} else {
		corpus, err = eval.BuildCorpus(eval.Options{Profile: p, Seed: c.seed})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "corpus:", err)
		os.Exit(1)
	}
	fmt.Println(corpus)
	return corpus
}

func table1(c config) {
	for _, p := range []dataset.Profile{profileSTA(c), profileSTB(c)} {
		g, err := dataset.New(p, c.seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(dataset.Table1(g))
	}
	fmt.Println("(populations are Table 1 scaled by -goodscale/-failscale)")
}

func table2(c config) {
	p := profileSTA(c)
	fs, err := eval.SelectFeatures(p, c.seed, eval.FeatureSelectOptions{Trees: c.trees})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("rank-sum screen kept %d of %d candidate features\n", len(fs.Kept), smart.NumFeatures())
	fmt.Printf("redundancy elimination selected %d features (paper: 19)\n\n", len(fs.Selected))
	fmt.Printf("%-4s %-34s %-10s %s\n", "Rank", "Attribute", "Import.", "Selected kinds")
	for _, a := range fs.AttrRank {
		kinds := []string{}
		for _, f := range fs.Selected {
			cf := smart.Catalog()[f]
			if cf.Attr.ID == a.Attr.ID {
				kinds = append(kinds, cf.Kind.String())
			}
		}
		fmt.Printf("%-4d #%d %-30s %-10.4f %s\n",
			a.Rank, a.Attr.ID, a.Attr.Name, a.Importance, strings.Join(kinds, "+"))
	}
	fmt.Println("\npaper Table 2 top ranks: 187, 197, 5, 184, 9, 193, 7, 183, 198, 189, 12, 199, 1")
}

// corpusProfiles returns the fleets an experiment iterates: both paper
// datasets for simulator runs, or a single pass when -data supplies one
// CSV.
func corpusProfiles(c config) []dataset.Profile {
	if c.dataCSV != "" {
		return []dataset.Profile{profileSTA(c)}
	}
	return []dataset.Profile{profileSTA(c), profileSTB(c)}
}

func table3(c config) {
	lambdas := []float64{1, 2, 3, 4, 5, 0}
	for _, p := range corpusProfiles(c) {
		corpus := buildCorpus(c, p)
		rows := eval.Table3(corpus, lambdas, c.reps, forest.Config{Trees: c.trees, MinLeafSize: 5}, c.seed)
		fmt.Printf("\nImpact of λ (NegSampleRatio) on offline RF — %s\n", corpus.Name)
		fmt.Printf("%-6s %-18s %-18s\n", "λ", "FDR(%)", "FAR(%)")
		for _, r := range rows {
			fmt.Printf("%-6s %-18s %-18s\n", r.Param, r.FDR, r.FAR)
		}
	}
}

func table4(c config) {
	lambdaNs := []float64{0.01, 0.02, 0.03, 0.05, 0.10, 1.00}
	for _, p := range corpusProfiles(c) {
		corpus := buildCorpus(c, p)
		cfg := core.Config{Trees: c.trees, LambdaPos: 1}
		rows := eval.Table4(corpus, lambdaNs, c.reps, cfg, c.seed)
		fmt.Printf("\nImpact of λn on ORF (λp=1) — %s\n", corpus.Name)
		fmt.Printf("%-6s %-18s %-18s\n", "λn", "FDR(%)", "FAR(%)")
		for _, r := range rows {
			fmt.Printf("%-6s %-18s %-18s\n", r.Param, r.FDR, r.FAR)
		}
	}
}

func learners(c config) []eval.OfflineLearner {
	return []eval.OfflineLearner{
		eval.RFLearner{Lambda: 3, Config: forest.Config{Trees: c.trees, MinLeafSize: 5}},
		eval.DTLearner{Lambda: 3, Config: dtree.Config{MaxSplits: 100, MinLeafSize: 10, Smoothing: 1}},
		eval.SVMLearner{Lambda: 3, Config: svm.Config{C: 10}, MaxRows: 1500},
	}
}

func figConvergence(c config, p dataset.Profile, title string) {
	corpus := buildCorpus(c, p)
	series := eval.MonthlyConvergence(corpus, eval.MonthlyOptions{
		StartMonth: 3,
		TargetFAR:  1.0,
		ORFConfig:  core.Config{Trees: c.trees},
		Learners:   learners(c),
		Seed:       c.seed,
	})
	fmt.Println("\n" + title + " (all points at FAR ≤ 1.0%)")
	printSeries(series, "FDR")
	writeSeriesCSV(c, slug(title), series)
}

// slug converts a figure title into a file name.
func slug(title string) string {
	out := make([]rune, 0, len(title))
	for _, r := range strings.ToLower(title) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			out = append(out, r)
		case r == ' ' || r == ':' || r == ',':
			if len(out) > 0 && out[len(out)-1] != '_' {
				out = append(out, '_')
			}
		}
	}
	return strings.Trim(string(out), "_")
}

func figLongTerm(c config, p dataset.Profile, deploy int, metric, title string) {
	// Long-term metrics are per-month: triple the failed population so
	// every month contains enough failure events to measure an FDR.
	p.FailedDisks *= 3
	corpus := buildCorpus(c, p)
	series := eval.LongTerm(corpus, eval.LongTermOptions{
		DeployMonth: deploy,
		TargetFAR:   1.0,
		RF:          eval.RFLearner{Lambda: 3, Config: forest.Config{Trees: c.trees, MinLeafSize: 5}},
		ORFConfig:   core.Config{Trees: c.trees},
		Seed:        c.seed,
	})
	fmt.Println("\n" + title)
	printSeries(series, metric)
	writeSeriesCSV(c, slug(title), series)
}

// horizon sweeps the prediction window — the paper fixes 7 days "for
// the sake of simplicity"; this quantifies the choice.
func horizon(c config) {
	corpus := buildCorpus(c, profileSTA(c))
	rows := eval.HorizonSweep(corpus, []int{1, 3, 7, 14, 30}, 1.0,
		eval.RFLearner{Lambda: 3, Config: forest.Config{Trees: c.trees, MinLeafSize: 5}},
		core.Config{Trees: c.trees}, c.seed)
	fmt.Printf("\nPrediction-horizon sweep (operating points near FAR 1%%)\n")
	fmt.Printf("%-8s %-10s %-10s %-10s %-10s %-10s\n",
		"horizon", "RF FDR%", "RF FAR%", "ORF FDR%", "ORF FAR%", "train pos")
	for _, r := range rows {
		fmt.Printf("%-8d %-10.2f %-10.2f %-10.2f %-10.2f %-10d\n",
			r.Horizon, r.RFFDR, r.RFFAR, r.ORFFDR, r.ORFFAR, r.TrainPositives)
	}
	fmt.Println("\n(the paper's 7-day window balances label volume against label purity)")
}

// drift reproduces the paper's section 1 preliminary experiment: the
// healthy-population distribution of cumulative SMART attributes moves
// over calendar time, which is the root cause of model aging.
func drift(c config) {
	corpus := buildCorpus(c, profileSTA(c))
	ref := 1
	probe := corpus.Months() - 2
	if probe <= ref {
		probe = ref + 1
	}
	rows := eval.DriftReport(corpus, ref, probe)
	fmt.Printf("\nHealthy-population drift, month %d vs month %d (KS test, scaled features)\n", ref+1, probe+1)
	fmt.Printf("%-30s %-10s %-10s %-12s %-12s %s\n",
		"feature", "KS-D", "p-value", "median(ref)", "median(new)", "cumulative?")
	for i, r := range rows {
		if i == 12 {
			break
		}
		cum := ""
		if r.Feature.Attr.Cumulative {
			cum = "yes"
		}
		fmt.Printf("%-30s %-10.3f %-10.2g %-12.4f %-12.4f %s\n",
			r.Feature.Name(), r.KS.D, r.KS.PValue, r.RefMedian, r.NewMedian, cum)
	}
	fmt.Println("\ncumulative attributes dominate the top of the list — the paper's stated")
	fmt.Println("root cause: an offline model's thresholds go stale as these grow fleet-wide.")
}

func ablation(c config) {
	p := profileSTA(c)
	p.FailedDisks *= 3
	corpus := buildCorpus(c, p)
	series := eval.AblationReplacement(corpus, 6, 1.0, core.Config{Trees: c.trees}, c.seed)
	fmt.Println("\nAblation: OOBE-driven tree replacement on/off, STA long-term FAR")
	printSeries(series, "FAR")
	fmt.Println()
	printSeries(series, "FDR")
	writeSeriesCSV(c, "ablation_replacement", series)
}

// writeSeriesCSV writes a figure's series as a plot-ready CSV
// (month,series,fdr,far) when -csvdir is set.
func writeSeriesCSV(c config, name string, series []eval.Series) {
	if c.csvDir == "" {
		return
	}
	if err := os.MkdirAll(c.csvDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "csvdir:", err)
		return
	}
	path := filepath.Join(c.csvDir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "csvdir:", err)
		return
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	_ = w.Write([]string{"month", "series", "fdr_pct", "far_pct"})
	for _, s := range series {
		for i, m := range s.Months {
			_ = w.Write([]string{
				strconv.Itoa(m), s.Name,
				strconv.FormatFloat(s.FDR[i], 'f', 4, 64),
				strconv.FormatFloat(s.FAR[i], 'f', 4, 64),
			})
		}
	}
	fmt.Printf("(series written to %s)\n", path)
}

// printSeries renders per-month values, one model per row block.
func printSeries(series []eval.Series, metric string) {
	if len(series) == 0 {
		return
	}
	fmt.Printf("%-20s", "month:")
	for _, m := range series[0].Months {
		fmt.Printf("%7d", m)
	}
	fmt.Println()
	for _, s := range series {
		vals := s.FDR
		if metric == "FAR" {
			vals = s.FAR
		}
		fmt.Printf("%-20s", s.Name+" "+metric+"%:")
		for _, v := range vals {
			if math.IsNaN(v) {
				fmt.Printf("%7s", "-")
			} else {
				fmt.Printf("%7.2f", v)
			}
		}
		fmt.Println()
	}
}
