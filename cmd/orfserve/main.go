// Command orfserve runs the online disk-failure prediction service: an
// HTTP API over a sharded serving engine — one worker goroutine per
// drive model, each owning its online random forest. SMART collectors
// POST daily snapshots; the service learns continuously (no retraining
// jobs, no training pipelines) and answers every snapshot with a live
// risk prediction.
//
// With -data the engine is crash-safe: every observation is appended to
// a write-ahead log before it is applied, and periodic per-model
// snapshots bound recovery time. On restart the engine loads the newest
// snapshots and replays the WAL suffix, resuming the exact learned
// state. SIGINT/SIGTERM trigger a graceful shutdown: in-flight requests
// finish, mailboxes drain, a final snapshot is taken, and the process
// exits 0.
//
//	orfserve -addr :8080 -data /var/lib/orfserve -snapshot-every 1m
//
//	curl -s localhost:8080/v1/observe -d '{
//	  "serial":"Z302T4N9","model":"ST4000DM000","day":812,
//	  "norm":{"5":100,"187":98,"197":100},
//	  "raw":{"5":0,"9":19512,"187":2,"197":0}
//	}'
//	-> {"serial":"Z302T4N9","day":812,"score":0.11,"risky":false,"final":false}
//
//	curl -s localhost:8080/v1/observe/batch -d '{"observations":[...]}'
//	curl -s localhost:8080/v1/stats
//	curl -s localhost:8080/v1/models
//	curl -s 'localhost:8080/v1/importance?model=ST4000DM000'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"orfdisk"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		trees     = flag.Int("trees", 30, "ensemble size T per drive model")
		lambdaN   = flag.Float64("lambdan", 0.02, "negative-class Poisson rate λn")
		threshold = flag.Float64("threshold", 0.5, "alarm probability threshold")
		horizon   = flag.Int("horizon", 7, "prediction window in days")
		dataDir   = flag.String("data", "", "durability directory (WAL + snapshots); empty = in-memory only")
		snapEvery = flag.Duration("snapshot-every", time.Minute, "snapshot interval (with -data)")
		mailbox   = flag.Int("mailbox", 256, "per-model shard mailbox capacity")
	)
	flag.Parse()

	eng, err := orfdisk.NewEngine(orfdisk.EngineConfig{
		Predictor: orfdisk.Config{
			Threshold: *threshold,
			Horizon:   *horizon,
			ORF:       orfdisk.ORFConfig{Trees: *trees, LambdaNeg: *lambdaN},
		},
		DataDir:       *dataDir,
		SnapshotEvery: *snapEvery,
		Mailbox:       *mailbox,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "orfserve: recovery failed:", err)
		os.Exit(1)
	}
	srv := orfdisk.NewServerWithEngine(eng)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		fmt.Fprintln(os.Stderr, "orfserve: shutting down")
		shCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shCtx); err != nil {
			fmt.Fprintln(os.Stderr, "orfserve: shutdown:", err)
		}
	}()

	durable := *dataDir
	if durable == "" {
		durable = "disabled"
	}
	fmt.Fprintf(os.Stderr,
		"orfserve: listening on %s (T=%d, λn=%g, threshold=%g, horizon=%dd, durability=%s)\n",
		*addr, *trees, *lambdaN, *threshold, *horizon, durable)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "orfserve:", err)
		os.Exit(1)
	}
	<-shutdownDone
	// Drain shard mailboxes, take the final snapshot, close the WAL.
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "orfserve: close:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "orfserve: clean shutdown")
}
