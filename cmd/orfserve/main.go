// Command orfserve runs the online disk-failure prediction service: an
// HTTP API over a sharded serving engine — one worker goroutine per
// drive model, each owning its online random forest. SMART collectors
// POST daily snapshots; the service learns continuously (no retraining
// jobs, no training pipelines) and answers every snapshot with a live
// risk prediction. Fleet dashboards score without writing through
// POST /v1/predict and /v1/predict/batch: lock-free reads against each
// model's published frozen snapshot, republished every -freeze-every
// applied observations or -freeze-interval of wall time.
//
// With -data the engine is crash-safe: every observation is appended to
// a write-ahead log before it is applied, and periodic per-model
// snapshots bound recovery time. On restart the engine loads the newest
// snapshots and replays the WAL suffix, resuming the exact learned
// state. SIGINT/SIGTERM trigger a graceful shutdown: in-flight requests
// finish, mailboxes drain, a final snapshot is taken, and the process
// exits 0.
//
// Observability: every instance serves Prometheus text metrics at
// GET /metrics on the API listener. -metrics-addr moves /metrics (and,
// with -pprof, the net/http/pprof handlers) to a separate admin
// listener so the profiling surface is never exposed on the public
// port. Structured logs go to stderr via log/slog; -log-level selects
// the verbosity (debug logs every request).
//
//	orfserve -addr :8080 -data /var/lib/orfserve -snapshot-every 1m \
//	         -metrics-addr :9090 -pprof -log-level info
//
//	curl -s localhost:8080/v1/observe -d '{
//	  "serial":"Z302T4N9","model":"ST4000DM000","day":812,
//	  "norm":{"5":100,"187":98,"197":100},
//	  "raw":{"5":0,"9":19512,"187":2,"197":0}
//	}'
//	-> {"serial":"Z302T4N9","day":812,"score":0.11,"risky":false,"final":false}
//
//	curl -s localhost:8080/v1/observe/batch -d '{"observations":[...]}'
//	curl -s localhost:8080/v1/predict -d '{
//	  "model":"ST4000DM000",
//	  "norm":{"5":100,"187":98,"197":100},
//	  "raw":{"5":0,"9":19512,"187":2,"197":0}
//	}'
//	-> {"model":"ST4000DM000","score":0.11,"risky":false,
//	    "updates_behind":17,"snapshot_age_seconds":0.4}
//	curl -s localhost:8080/v1/stats
//	curl -s localhost:8080/v1/models
//	curl -s 'localhost:8080/v1/importance?model=ST4000DM000'
//	curl -s localhost:9090/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"orfdisk"
	"orfdisk/internal/metrics"
	"orfdisk/internal/replica"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		trees       = flag.Int("trees", 30, "ensemble size T per drive model")
		lambdaN     = flag.Float64("lambdan", 0.02, "negative-class Poisson rate λn")
		threshold   = flag.Float64("threshold", 0.5, "alarm probability threshold")
		horizon     = flag.Int("horizon", 7, "prediction window in days")
		dataDir     = flag.String("data", "", "durability directory (WAL + snapshots); empty = in-memory only")
		snapEvery   = flag.Duration("snapshot-every", time.Minute, "snapshot interval (with -data)")
		mailbox     = flag.Int("mailbox", 256, "per-model shard mailbox capacity")
		freezeEvery = flag.Int("freeze-every", 256, "publish a fresh scoring snapshot for /v1/predict after this many applied observations per model (negative disables republication)")
		freezeIval  = flag.Duration("freeze-interval", time.Second, "also publish a fresh scoring snapshot after this much wall time (negative disables the time trigger)")
		batchBytes  = flag.Int64("batch-max-bytes", orfdisk.DefaultBatchMaxBytes, "request body cap for POST /v1/observe/batch (413 above)")
		batchItems  = flag.Int("batch-max-items", orfdisk.DefaultBatchMaxItems, "max observations per POST /v1/observe/batch request (400 above)")
		metricsAddr = flag.String("metrics-addr", "", "separate admin listener for /metrics and pprof; empty serves /metrics on -addr")
		pprofOn     = flag.Bool("pprof", false, "mount net/http/pprof on the admin listener (requires -metrics-addr)")
		logLevel    = flag.String("log-level", "info", "log verbosity: debug, info, warn, or error")
		replAddr    = flag.String("replicate-addr", "", "leader: listen here for follower replicas and ship the WAL (requires -data); on a -follow instance the listener starts at promotion")
		follow      = flag.String("follow", "", "follower: replicate from the leader's -replicate-addr; this instance becomes a read replica (requires -data)")
		syncAcks    = flag.Int("sync-acks", 0, "synchronous commit: each write blocks until this many followers have fsync-acked it (0 = asynchronous; requires -replicate-addr)")
		syncAckTO   = flag.Duration("sync-ack-timeout", 5*time.Second, "synchronous commit: give up waiting for follower acks after this long (the write stays durable locally; clients get 503 + Retry-After)")
		readyMaxLag = flag.Uint64("ready-max-lag", 256, "follower: /readyz reports not-ready while replication lag exceeds this many records")
		readyMaxSil = flag.Duration("ready-max-silence", 15*time.Second, "follower: /readyz reports not-ready after this long without any leader frame (catches dead streams that freeze the lag at zero)")
	)
	flag.Parse()

	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "orfserve: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))
	if *pprofOn && *metricsAddr == "" {
		logger.Error("-pprof requires -metrics-addr: refusing to expose profiling on the public listener")
		os.Exit(2)
	}
	if (*replAddr != "" || *follow != "") && *dataDir == "" {
		logger.Error("replication requires -data (the WAL is what gets shipped)")
		os.Exit(2)
	}
	if *syncAcks > 0 && *replAddr == "" {
		logger.Error("-sync-acks requires -replicate-addr (followers ack over the ship listener)")
		os.Exit(2)
	}

	reg := metrics.NewRegistry()
	eng, err := orfdisk.NewEngine(orfdisk.EngineConfig{
		Predictor: orfdisk.Config{
			Threshold: *threshold,
			Horizon:   *horizon,
			ORF:       orfdisk.ORFConfig{Trees: *trees, LambdaNeg: *lambdaN},
		},
		DataDir:         *dataDir,
		SnapshotEvery:   *snapEvery,
		Mailbox:         *mailbox,
		FreezeEvery:     *freezeEvery,
		FreezeInterval:  *freezeIval,
		Follower:        *follow != "",
		ReadyMaxLag:     *readyMaxLag,
		ReadyMaxSilence: *readyMaxSil,
		SyncAcks:        *syncAcks,
		SyncAckTimeout:  *syncAckTO,
		Metrics:         reg,
		Logger:          logger,
	})
	if err != nil {
		logger.Error("recovery failed", "err", err)
		os.Exit(1)
	}
	srv := orfdisk.NewServerWithEngine(eng)
	srv.SetBatchLimits(*batchBytes, *batchItems)

	// The replication topology can change at runtime (promotion starts a
	// ship listener; POST /v1/follow swaps the replication client), so
	// both handles live behind a mutex.
	var (
		replMu sync.Mutex
		src    *replica.Source
		fl     *replica.Follower
	)
	// startSource opens the WAL-ship listener and attaches it to the
	// engine as the sync-commit ack waiter and the advertised
	// replicate_addr (so a routing tier can re-point followers here).
	startSource := func() error {
		s, err := replica.NewSource(*replAddr, replica.SourceConfig{
			WAL:          eng.WAL(),
			SeedProvider: eng,
			Metrics:      reg,
			Logger:       logger,
		})
		if err != nil {
			return err
		}
		replMu.Lock()
		src = s
		replMu.Unlock()
		eng.SetAckWaiter(s)
		eng.SetReplicationSourceAddr(s.Addr())
		eng.SetSeedStats(s)
		logger.Info("shipping WAL to followers", "addr", s.Addr(), "sync_acks", *syncAcks)
		return nil
	}
	if *replAddr != "" && *follow == "" {
		if err := startSource(); err != nil {
			logger.Error("replication listener failed", "addr", *replAddr, "err", err)
			os.Exit(1)
		}
	}
	if *follow != "" {
		startFollower := func(leader string) (*replica.Follower, error) {
			return replica.StartFollower(leader, replica.FollowerConfig{
				Applier: eng,
				Seeder:  eng,
				Metrics: reg,
				Logger:  logger,
			})
		}
		fl, err = startFollower(*follow)
		if err != nil {
			logger.Error("starting replication client failed", "leader", *follow, "err", err)
			os.Exit(1)
		}
		// POST /v1/follow re-points this follower at a new leader (the
		// routing tier calls it on survivors after a failover): stop the
		// old stream, then dial the new address.
		srv.SetFollowControl(func(leader string) error {
			if eng.Replication().Role != "follower" {
				return fmt.Errorf("not a follower: refusing to re-point")
			}
			replMu.Lock()
			defer replMu.Unlock()
			if fl != nil {
				fl.Close()
				fl = nil
			}
			nf, err := startFollower(leader)
			if err != nil {
				return err
			}
			fl = nf
			logger.Info("re-pointed replication client", "leader", leader)
			return nil
		})
		// Promotion (POST /v1/promote) ends the old life first: stop
		// pulling from the dead leader before the engine takes writes,
		// then — when configured — start shipping to the survivors.
		eng.OnPromote(func() {
			logger.Info("promotion: stopping replication client")
			replMu.Lock()
			old := fl
			fl = nil
			replMu.Unlock()
			if old != nil {
				old.Close()
			}
			if *replAddr != "" {
				if err := startSource(); err != nil {
					logger.Error("promotion: replication listener failed", "addr", *replAddr, "err", err)
				}
			}
		})
		logger.Info("following leader", "leader", *follow,
			"ready_max_lag", *readyMaxLag, "ready_max_silence", *readyMaxSil)
	}
	defer func() {
		replMu.Lock()
		defer replMu.Unlock()
		if fl != nil {
			fl.Close()
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	var adminSrv *http.Server
	if *metricsAddr != "" {
		// A dedicated mux, never http.DefaultServeMux: importing pprof's
		// handlers explicitly keeps the public listener free of them.
		admin := http.NewServeMux()
		admin.Handle("/metrics", reg.Handler())
		if *pprofOn {
			admin.HandleFunc("/debug/pprof/", pprof.Index)
			admin.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			admin.HandleFunc("/debug/pprof/profile", pprof.Profile)
			admin.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			admin.HandleFunc("/debug/pprof/trace", pprof.Trace)
		}
		adminSrv = &http.Server{
			Addr:              *metricsAddr,
			Handler:           admin,
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			logger.Info("admin listener up", "addr", *metricsAddr, "pprof", *pprofOn)
			if err := adminSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("admin listener failed", "err", err)
			}
		}()
	}
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		logger.Info("shutting down")
		shCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shCtx); err != nil {
			logger.Warn("shutdown", "err", err)
		}
		if adminSrv != nil {
			if err := adminSrv.Shutdown(shCtx); err != nil {
				logger.Warn("admin shutdown", "err", err)
			}
		}
	}()

	durable := *dataDir
	if durable == "" {
		durable = "disabled"
	}
	logger.Info("listening", "addr", *addr,
		"trees", *trees, "lambda_n", *lambdaN, "threshold", *threshold,
		"horizon_days", *horizon, "durability", durable)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("listen failed", "err", err)
		os.Exit(1)
	}
	<-shutdownDone
	// Stop shipping before closing the engine: the source tails the
	// engine's WAL.
	replMu.Lock()
	if src != nil {
		src.Close()
	}
	replMu.Unlock()
	// Drain shard mailboxes, take the final snapshot, close the WAL.
	if err := srv.Close(); err != nil {
		logger.Error("close failed", "err", err)
		os.Exit(1)
	}
	logger.Info("clean shutdown")
}
