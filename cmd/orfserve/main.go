// Command orfserve runs the online disk-failure prediction service: an
// HTTP API around a per-model fleet of online random forests. SMART
// collectors POST daily snapshots; the service learns continuously (no
// retraining jobs, no training pipelines) and answers every snapshot
// with a live risk prediction.
//
//	orfserve -addr :8080
//
//	curl -s localhost:8080/v1/observe -d '{
//	  "serial":"Z302T4N9","model":"ST4000DM000","day":812,
//	  "norm":{"5":100,"187":98,"197":100},
//	  "raw":{"5":0,"9":19512,"187":2,"197":0}
//	}'
//	-> {"serial":"Z302T4N9","day":812,"score":0.11,"risky":false,"final":false}
//
//	curl -s localhost:8080/v1/stats
//	curl -s 'localhost:8080/v1/importance?model=ST4000DM000'
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"orfdisk"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		trees     = flag.Int("trees", 30, "ensemble size T per drive model")
		lambdaN   = flag.Float64("lambdan", 0.02, "negative-class Poisson rate λn")
		threshold = flag.Float64("threshold", 0.5, "alarm probability threshold")
		horizon   = flag.Int("horizon", 7, "prediction window in days")
	)
	flag.Parse()

	srv := orfdisk.NewServer(orfdisk.Config{
		Threshold: *threshold,
		Horizon:   *horizon,
		ORF:       orfdisk.ORFConfig{Trees: *trees, LambdaNeg: *lambdaN},
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Fprintf(os.Stderr, "orfserve: listening on %s (T=%d, λn=%g, threshold=%g, horizon=%dd)\n",
		*addr, *trees, *lambdaN, *threshold, *horizon)
	if err := httpSrv.ListenAndServe(); err != nil {
		fmt.Fprintln(os.Stderr, "orfserve:", err)
		os.Exit(1)
	}
}
