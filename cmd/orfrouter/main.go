// Command orfrouter is the cluster routing tier: one client-facing HTTP
// endpoint speaking the same API as a single orfserve node, in front of
// N replication groups. Every request's drive model (or serial) is
// consistent-hashed to a group; writes go to the group's leader, reads
// fan out round-robin across its healthy, caught-up replicas, and a
// health loop promotes a follower (POST /v1/promote) when a leader
// stops answering /healthz.
//
// Topology comes from -nodes: groups separated by ';', nodes within a
// group by ',', the first node being the group's leader, with an
// optional "name=" prefix (groups default to g0, g1, ...):
//
//	orfrouter -addr :8000 \
//	  -nodes 'a=http://10.0.0.1:8080,http://10.0.0.2:8080;b=http://10.0.1.1:8080,http://10.0.1.2:8080'
//
//	curl -s localhost:8000/v1/observe -d '{"serial":"Z3","model":"ST4000DM000",...}'
//	curl -s localhost:8000/v1/cluster   # topology: leaders, health, readiness
//	curl -s localhost:8000/metrics      # route_requests_total{node,outcome}, router_promotions_total
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"orfdisk/internal/cluster"
)

// parseNodes turns the -nodes syntax into group specs.
func parseNodes(s string) ([]cluster.GroupSpec, error) {
	if s == "" {
		return nil, errors.New("-nodes is required")
	}
	var specs []cluster.GroupSpec
	for i, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name := fmt.Sprintf("g%d", i)
		if eq := strings.IndexByte(part, '='); eq >= 0 && !strings.Contains(part[:eq], "/") {
			name = strings.TrimSpace(part[:eq])
			part = part[eq+1:]
		}
		var nodes []string
		for _, n := range strings.Split(part, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if !strings.Contains(n, "://") {
				n = "http://" + n
			}
			nodes = append(nodes, n)
		}
		if len(nodes) == 0 {
			return nil, fmt.Errorf("group %q has no nodes", name)
		}
		specs = append(specs, cluster.GroupSpec{Name: name, Nodes: nodes})
	}
	if len(specs) == 0 {
		return nil, errors.New("-nodes declares no groups")
	}
	return specs, nil
}

func main() {
	var (
		addr       = flag.String("addr", ":8000", "listen address")
		nodes      = flag.String("nodes", "", "cluster topology: 'name=url,url;name=url,...' — groups ';'-separated, nodes ','-separated, first node is the leader")
		healthIval = flag.Duration("health-interval", time.Second, "node health probe cadence")
		failAfter  = flag.Int("fail-after", 3, "consecutive failed leader probes before promoting a follower")
		timeout    = flag.Duration("timeout", 5*time.Second, "upstream request timeout")
		logLevel   = flag.String("log-level", "info", "log verbosity: debug, info, warn, or error")
	)
	flag.Parse()

	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "orfrouter: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))

	specs, err := parseNodes(*nodes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "orfrouter: %v\n", err)
		os.Exit(2)
	}
	rt, err := cluster.New(specs, cluster.Config{
		HealthInterval: *healthIval,
		FailAfter:      *failAfter,
		Client:         &http.Client{Timeout: *timeout},
		Logger:         logger,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "orfrouter: %v\n", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		logger.Info("shutting down")
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shCtx); err != nil {
			logger.Warn("shutdown", "err", err)
		}
	}()

	groups := make([]string, len(specs))
	for i, s := range specs {
		groups[i] = fmt.Sprintf("%s(%d nodes)", s.Name, len(s.Nodes))
	}
	logger.Info("routing", "addr", *addr, "groups", strings.Join(groups, " "),
		"health_interval", *healthIval, "fail_after", *failAfter)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("listen failed", "err", err)
		os.Exit(1)
	}
	<-shutdownDone
	rt.Close()
	logger.Info("clean shutdown")
}
