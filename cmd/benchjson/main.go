// Command benchjson converts `go test -bench` output on stdin into a
// JSON perf baseline: benchmark name -> {ns_per_op, b_per_op,
// allocs_per_op, runs}. With -count>1 repetitions it records the
// minimum per metric — the least-interfered-with run is the best
// estimate of the code's cost on a noisy CI box. Each bench family
// writes its own baseline file via -o so refreshing one never clobbers
// another: `make bench-ingest` records BENCH_ingest.json, `make
// bench-predict` records the read-path baseline in BENCH_predict.json.
//
//	go test . -run '^$' -bench Ingest -benchmem -count=5 | benchjson -o BENCH_ingest.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

type result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Runs        int     `json:"runs"`
}

// benchLine matches one result line: name, iteration count, then
// "value unit" metric pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.*)$`)

// cpuSuffix is the "-8"-style GOMAXPROCS tag the testing package
// appends to every benchmark name when running with more than one CPU.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	raw := map[string][]result{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the stream through so progress stays visible
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		r := result{NsPerOp: -1, BytesPerOp: -1, AllocsPerOp: -1}
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			}
		}
		if r.NsPerOp < 0 {
			continue
		}
		raw[m[1]] = append(raw[m[1]], r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(raw) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	merged := map[string]result{}
	for name, runs := range raw {
		min := runs[0]
		for _, r := range runs[1:] {
			if r.NsPerOp < min.NsPerOp {
				min.NsPerOp = r.NsPerOp
			}
			if r.BytesPerOp < min.BytesPerOp {
				min.BytesPerOp = r.BytesPerOp
			}
			if r.AllocsPerOp < min.AllocsPerOp {
				min.AllocsPerOp = r.AllocsPerOp
			}
		}
		min.Runs = len(runs)
		// Metrics absent from the input (no -benchmem) record as zero,
		// not as the -1 accumulator sentinel.
		if min.BytesPerOp < 0 {
			min.BytesPerOp = 0
		}
		if min.AllocsPerOp < 0 {
			min.AllocsPerOp = 0
		}
		merged[stripCPU(name, raw)] = min
	}

	buf, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(merged), *out)
}

// stripCPU removes the testing package's GOMAXPROCS suffix, but only
// when every recorded name carries the same one — a name that merely
// ends in digits (a sub-benchmark like "batch64" has no dash, but be
// safe) must survive unchanged so baselines diff cleanly across
// machines with different core counts.
func stripCPU(name string, all map[string][]result) string {
	suf := cpuSuffix.FindString(name)
	if suf == "" {
		return name
	}
	for n := range all {
		if !strings.HasSuffix(n, suf) {
			return name
		}
	}
	return strings.TrimSuffix(name, suf)
}
