// Command benchjson converts `go test -bench` output on stdin into a
// JSON perf baseline: benchmark name -> {ns_per_op, b_per_op,
// allocs_per_op, runs}. With -count>1 repetitions it records the
// minimum per metric — the least-interfered-with run is the best
// estimate of the code's cost on a noisy CI box. Each bench family
// writes its own baseline file via -o so refreshing one never clobbers
// another: `make bench-ingest` records BENCH_ingest.json, `make
// bench-predict` records the read-path baseline in BENCH_predict.json.
//
//	go test . -run '^$' -bench Ingest -benchmem -count=5 | benchjson -o BENCH_ingest.json
//
// With -check it becomes a regression gate instead of a recorder: the
// fresh results on stdin are compared against the committed baseline
// and the exit status is non-zero when any compared benchmark runs more
// than -tol slower (ns/op) or allocates more than the baseline. -match
// restricts the comparison to a name subset (e.g. the '/smoke/' mode
// entries recorded on the same forest size the smoke run uses):
//
//	go test ... -short -bench ... | benchjson -check BENCH_predict.json -match '/smoke/' -tol 0.25
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Runs        int     `json:"runs"`
	// Extra holds custom b.ReportMetric units (rows/s, snap_bytes, ...)
	// so domain numbers land in the baseline next to the timings. They
	// are recorded, never gated.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// benchLine matches one result line: name, iteration count, then
// "value unit" metric pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.*)$`)

// cpuSuffix is the "-8"-style GOMAXPROCS tag the testing package
// appends to every benchmark name when running with more than one CPU.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	check := flag.String("check", "", "baseline JSON to gate against instead of recording")
	match := flag.String("match", "", "regexp restricting which benchmarks -check compares")
	tol := flag.Float64("tol", 0.25, "allowed fractional ns/op regression in -check mode")
	flag.Parse()

	raw := map[string][]result{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the stream through so progress stays visible
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		r := result{NsPerOp: -1, BytesPerOp: -1, AllocsPerOp: -1}
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			case "MB/s":
				// testing's throughput column; derivable from ns/op.
			default:
				if r.Extra == nil {
					r.Extra = map[string]float64{}
				}
				r.Extra[fields[i+1]] = v
			}
		}
		if r.NsPerOp < 0 {
			continue
		}
		raw[m[1]] = append(raw[m[1]], r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(raw) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	merged := map[string]result{}
	for name, runs := range raw {
		min := runs[0]
		for _, r := range runs[1:] {
			if r.NsPerOp < min.NsPerOp {
				min.NsPerOp = r.NsPerOp
			}
			if r.BytesPerOp < min.BytesPerOp {
				min.BytesPerOp = r.BytesPerOp
			}
			if r.AllocsPerOp < min.AllocsPerOp {
				min.AllocsPerOp = r.AllocsPerOp
			}
			for k, v := range r.Extra {
				if min.Extra == nil {
					min.Extra = map[string]float64{}
				}
				if cur, ok := min.Extra[k]; !ok || v > cur {
					// Rates (rows/s, MB/s): the best run is the max;
					// sizes (snap_bytes) are run-invariant either way.
					min.Extra[k] = v
				}
			}
		}
		min.Runs = len(runs)
		// Metrics absent from the input (no -benchmem) record as zero,
		// not as the -1 accumulator sentinel.
		if min.BytesPerOp < 0 {
			min.BytesPerOp = 0
		}
		if min.AllocsPerOp < 0 {
			min.AllocsPerOp = 0
		}
		merged[stripCPU(name, raw)] = min
	}

	if *check != "" {
		os.Exit(gate(merged, *check, *match, *tol))
	}

	buf, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(merged), *out)
}

// gate compares fresh results against a committed baseline and returns
// the process exit code: 1 on any ns/op regression beyond tol, any
// allocs/op increase, or an empty comparison (a renamed benchmark or a
// too-narrow -match must fail loudly, not gate nothing). Benchmarks
// present on one side only are warned about but don't fail the gate —
// the baseline legitimately lags when a benchmark is first added.
func gate(fresh map[string]result, baselinePath, match string, tol float64) int {
	buf, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	baseline := map[string]result{}
	if err := json.Unmarshal(buf, &baseline); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", baselinePath, err)
		return 1
	}
	var sel *regexp.Regexp
	if match != "" {
		if sel, err = regexp.Compile(match); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			return 1
		}
	}
	names := make([]string, 0, len(fresh))
	for name := range fresh {
		if sel == nil || sel.MatchString(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	compared, failed := 0, 0
	for _, name := range names {
		got := fresh[name]
		base, ok := baseline[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: %s: not in baseline %s (record it with make bench-predict)\n",
				name, baselinePath)
			continue
		}
		compared++
		limit := base.NsPerOp * (1 + tol)
		switch {
		case got.NsPerOp > limit:
			fmt.Fprintf(os.Stderr, "benchjson: FAIL %s: %.0f ns/op, baseline %.0f (limit %.0f at tol %.2f)\n",
				name, got.NsPerOp, base.NsPerOp, limit, tol)
			failed++
		case got.AllocsPerOp > base.AllocsPerOp:
			fmt.Fprintf(os.Stderr, "benchjson: FAIL %s: %.0f allocs/op, baseline %.0f\n",
				name, got.AllocsPerOp, base.AllocsPerOp)
			failed++
		default:
			fmt.Fprintf(os.Stderr, "benchjson: ok   %s: %.0f ns/op vs baseline %.0f\n",
				name, got.NsPerOp, base.NsPerOp)
		}
	}
	if compared == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: nothing compared against %s (match %q)\n", baselinePath, match)
		return 1
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d of %d compared benchmarks regressed\n", failed, compared)
		return 1
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks within %.0f%% of %s\n", compared, tol*100, baselinePath)
	return 0
}

// stripCPU removes the testing package's GOMAXPROCS suffix, but only
// when every recorded name carries the same one — a name that merely
// ends in digits (a sub-benchmark like "batch64" has no dash, but be
// safe) must survive unchanged so baselines diff cleanly across
// machines with different core counts.
func stripCPU(name string, all map[string][]result) string {
	suf := cpuSuffix.FindString(name)
	if suf == "" {
		return name
	}
	for n := range all {
		if !strings.HasSuffix(n, suf) {
			return name
		}
	}
	return strings.TrimSuffix(name, suf)
}
