// Command orfload backfills an engine data directory from a historical
// Backblaze-format CSV archive — years of daily snapshots split across
// quarterly (possibly striped) files, plain or compressed (.csv.gz and
// .zip archives stream straight through the readers) — at disk speed.
//
// It merges the files into one chronological stream (parallel readers,
// k-way min-day merge), feeds the engine in batches through the
// scoring-free backfill path, and checkpoints a durable cursor so an
// interrupted load (SIGINT, SIGTERM, kill -9, power loss) resumes at
// the last durable row with nothing duplicated or skipped: just run the
// same command again.
//
// Usage:
//
//	orfgen -profile ALL -scale 0.05 -history archive/ -stripes 4 -gzip
//	orfload -scan 'archive/*.csv.gz'      # integrity pre-scan, no ingest
//	orfload -data /var/lib/orfdisk 'archive/*.csv.gz'
//	orfserve -data /var/lib/orfdisk       # serve the backfilled state
//
// Observability: -metrics-addr starts an admin listener with /metrics
// (backfill_rows_per_second, backfill_bytes_per_second,
// backfill_cursor_day, ...) and, with -pprof, the pprof handlers; the
// same rates land in the progress log either way.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"syscall"
	"text/tabwriter"
	"time"

	"orfdisk"
	"orfdisk/internal/backfill"
	"orfdisk/internal/metrics"
	"orfdisk/internal/smart"
)

// runScan is the -scan mode: read every file end to end, print an
// integrity report, touch nothing. Returns the process exit code.
func runScan(files []string, readerBuf int) int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	scans, err := backfill.Scan(ctx, files, backfill.Options{ReaderBuf: readerBuf})
	if err != nil && len(scans) == 0 {
		fmt.Fprintf(os.Stderr, "orfload: scan failed: %v\n", err)
		return 1
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(w, "FILE\tROWS\tMB\tFIRST\tLAST\tMALFORMED\tSTATUS")
	var totRows, totBytes, totBad int64
	bad := false
	for _, fs := range scans {
		status := "ok"
		switch {
		case fs.Err != nil:
			status = "ERROR: " + fs.Err.Error()
			bad = true
		case fs.Unsorted:
			status = "UNSORTED"
			bad = true
		}
		first, last := "-", "-"
		if fs.FirstDay >= 0 {
			first, last = smart.DayToDate(fs.FirstDay), smart.DayToDate(fs.LastDay)
		}
		fmt.Fprintf(w, "%s\t%d\t%.1f\t%s\t%s\t%d\t%s\n",
			fs.Name, fs.Rows, float64(fs.Bytes)/1e6, first, last, fs.Malformed, status)
		totRows += fs.Rows
		totBytes += fs.Bytes
		totBad += fs.Malformed
	}
	fmt.Fprintf(w, "TOTAL\t%d\t%.1f\t\t\t%d\t%d files in %s\n",
		totRows, float64(totBytes)/1e6, totBad, len(scans), time.Since(start).Round(time.Millisecond))
	w.Flush()
	if err != nil {
		fmt.Fprintf(os.Stderr, "orfload: scan found problems: %v\n", err)
	}
	if bad || err != nil {
		return 1
	}
	return 0
}

func main() {
	var (
		dataDir     = flag.String("data", "", "engine data directory (required unless -scan; created if missing)")
		scanOnly    = flag.Bool("scan", false, "integrity pre-scan: read every file end to end and report rows, bytes, date range and malformed rows without ingesting anything")
		batchRows   = flag.Int("batch", 1024, "merged rows per engine batch")
		ckptEvery   = flag.Int("checkpoint-every", 16, "batches per durable resume cursor")
		chunkRows   = flag.Int("chunk-rows", 4096, "rows per reader chunk (throughput knob; never affects ordering)")
		readerBuf   = flag.Int("reader-buf", 1<<20, "per-file reader buffer in bytes")
		trees       = flag.Int("trees", 0, "override predictor forest size (0 = default)")
		progEvery   = flag.Duration("progress", 5*time.Second, "progress log cadence (negative disables)")
		metricsAddr = flag.String("metrics-addr", "", "admin listener for /metrics and pprof during the load")
		pprofOn     = flag.Bool("pprof", false, "mount net/http/pprof on the admin listener (requires -metrics-addr)")
		logLevel    = flag.String("log-level", "info", "log verbosity: debug, info, warn, or error")
	)
	flag.Parse()

	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "orfload: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))
	if *dataDir == "" && !*scanOnly {
		logger.Error("-data is required (backfill is pointless without durability)")
		os.Exit(2)
	}
	if *pprofOn && *metricsAddr == "" {
		logger.Error("-pprof requires -metrics-addr")
		os.Exit(2)
	}

	// Positional args are files or globs; expand and dedupe.
	var files []string
	seen := map[string]bool{}
	for _, arg := range flag.Args() {
		matches, err := filepath.Glob(arg)
		if err != nil {
			logger.Error("bad file pattern", "pattern", arg, "err", err)
			os.Exit(2)
		}
		if len(matches) == 0 {
			// Not a pattern (or nothing matched): treat as a literal path
			// so a typo fails loudly at open time instead of silently.
			matches = []string{arg}
		}
		for _, m := range matches {
			if !seen[m] {
				seen[m] = true
				files = append(files, m)
			}
		}
	}
	if len(files) == 0 {
		logger.Error("no input files; usage: orfload -data DIR file.csv ['glob*.csv' ...]")
		os.Exit(2)
	}
	sort.Strings(files)

	if *scanOnly {
		os.Exit(runScan(files, *readerBuf))
	}

	reg := metrics.NewRegistry()
	eng, err := orfdisk.NewEngine(orfdisk.EngineConfig{
		Predictor: orfdisk.Config{ORF: orfdisk.ORFConfig{Trees: *trees}},
		DataDir:   *dataDir,
		Metrics:   reg,
		Logger:    logger,
	})
	if err != nil {
		logger.Error("engine recovery failed", "err", err)
		os.Exit(1)
	}

	var adminSrv *http.Server
	if *metricsAddr != "" {
		admin := http.NewServeMux()
		admin.Handle("/metrics", reg.Handler())
		if *pprofOn {
			admin.HandleFunc("/debug/pprof/", pprof.Index)
			admin.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			admin.HandleFunc("/debug/pprof/profile", pprof.Profile)
			admin.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			admin.HandleFunc("/debug/pprof/trace", pprof.Trace)
		}
		adminSrv = &http.Server{Addr: *metricsAddr, Handler: admin, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			logger.Info("admin listener up", "addr", *metricsAddr, "pprof", *pprofOn)
			if err := adminSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("admin listener failed", "err", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	stats, runErr := backfill.Run(ctx, eng, files, backfill.Options{
		BatchRows:       *batchRows,
		CheckpointEvery: *ckptEvery,
		ChunkRows:       *chunkRows,
		ReaderBuf:       *readerBuf,
		Metrics:         reg,
		Logger:          logger,
		ProgressEvery:   *progEvery,
	})

	// Close snapshots every model and persists the final cursor, so the
	// next process (orfserve, or a resuming orfload) recovers without
	// replaying the whole WAL. On a canceled run this is the graceful
	// half of crash-safety; the WAL alone already covers kill -9.
	if err := eng.Close(); err != nil {
		logger.Error("engine close failed", "err", err)
		if runErr == nil {
			runErr = err
		}
	}
	if adminSrv != nil {
		shCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		adminSrv.Shutdown(shCtx)
		cancel()
	}

	elapsed := time.Since(start).Seconds()
	logger.Info("backfill finished",
		"rows", stats.Rows, "mb", float64(stats.Bytes)/1e6,
		"rows_per_sec", int64(float64(stats.Rows)/elapsed),
		"mb_per_sec", float64(stats.Bytes)/1e6/elapsed,
		"batches", stats.Batches, "checkpoints", stats.Checkpoints,
		"skipped", stats.Skipped, "resume_skipped", stats.ResumeSkipped,
		"days", fmt.Sprintf("%d..%d", stats.FirstDay, stats.LastDay),
		"elapsed", time.Since(start).Round(time.Millisecond))
	if runErr != nil {
		if errors.Is(runErr, context.Canceled) {
			logger.Info("interrupted; durable cursor saved — rerun the same command to resume")
			os.Exit(0)
		}
		logger.Error("backfill failed", "err", runErr)
		os.Exit(1)
	}
}
