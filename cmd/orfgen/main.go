// Command orfgen generates a synthetic SMART fleet as a Backblaze-format
// CSV, suitable for feeding cmd/orfmon or any external tooling.
//
// Usage:
//
//	orfgen -profile STA -scale 0.01 -months 12 > fleet.csv
//	orfgen -profile STB -scale 0.05 -o stb.csv
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"orfdisk/internal/dataset"
	"orfdisk/internal/smart"
)

func main() {
	var (
		profile = flag.String("profile", "STA", "fleet profile: STA or STB")
		scale   = flag.Float64("scale", 0.01, "population scale vs the paper's Table 1")
		months  = flag.Int("months", 0, "override window length in months (0 = profile default)")
		seed    = flag.Uint64("seed", 1, "random seed")
		out     = flag.String("o", "", "output file (default stdout)")
		meta    = flag.String("meta", "", "also write ground-truth disk metadata as JSON here")
	)
	flag.Parse()

	var prof dataset.Profile
	switch *profile {
	case "STA":
		prof = dataset.STA(*scale)
	case "STB":
		prof = dataset.STB(*scale)
	default:
		fmt.Fprintf(os.Stderr, "orfgen: unknown profile %q (want STA or STB)\n", *profile)
		os.Exit(2)
	}
	if *months > 0 {
		prof = prof.WithMonths(*months)
	}

	gen, err := dataset.New(prof, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "orfgen:", err)
		os.Exit(1)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "orfgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	cw := smart.NewWriter(bw, map[string]int64{
		prof.Model: int64(prof.CapacityTB) * 1_000_000_000_000,
	})
	n := 0
	err = gen.Stream(func(s smart.Sample) error {
		n++
		return cw.Write(s)
	})
	if err == nil {
		err = cw.Flush()
	}
	if err == nil {
		err = bw.Flush()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "orfgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "orfgen: wrote %d samples for %d disks (%s, %d months)\n",
		n, prof.TotalDisks(), prof.Name, prof.Months)

	if *meta != "" {
		f, err := os.Create(*meta)
		if err != nil {
			fmt.Fprintln(os.Stderr, "orfgen:", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(gen.Disks()); err != nil {
			fmt.Fprintln(os.Stderr, "orfgen:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "orfgen:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "orfgen: ground truth written to %s\n", *meta)
	}
}
