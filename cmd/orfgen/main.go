// Command orfgen generates a synthetic SMART fleet as a Backblaze-format
// CSV, suitable for feeding cmd/orfmon, cmd/orfload or any external
// tooling.
//
// Usage:
//
//	orfgen -profile STA -scale 0.01 -months 12 > fleet.csv
//	orfgen -profile STB -scale 0.05 -o stb.csv
//
// Fleet-history mode writes the layout real Backblaze archives ship in —
// one CSV per quarter, optionally striped into several files — so the
// backfill pipeline's multi-file chronological merge has something
// honest to chew on:
//
//	orfgen -profile ALL -scale 0.01 -months 12 -history data/ -stripes 4
//
// Add -gzip to emit .csv.gz stripes — the compressed form real archives
// download as, which orfload streams without unpacking.
package main

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"

	"orfdisk/internal/dataset"
	"orfdisk/internal/smart"
)

func main() {
	var (
		profile = flag.String("profile", "STA", "fleet profile: STA, STB, or ALL (both fleets merged)")
		scale   = flag.Float64("scale", 0.01, "population scale vs the paper's Table 1")
		months  = flag.Int("months", 0, "override window length in months (0 = profile default)")
		seed    = flag.Uint64("seed", 1, "random seed")
		out     = flag.String("o", "", "output file (default stdout)")
		meta    = flag.String("meta", "", "also write ground-truth disk metadata as JSON here")
		history = flag.String("history", "", "fleet-history mode: write per-quarter CSVs into this directory")
		stripes = flag.Int("stripes", 1, "with -history, split each quarter into N files by serial hash")
		gzipOut = flag.Bool("gzip", false, "with -history, gzip-compress each file (.csv.gz), the layout real corpora download as")
	)
	flag.Parse()
	if *gzipOut && *history == "" {
		fmt.Fprintln(os.Stderr, "orfgen: -gzip requires -history")
		os.Exit(2)
	}

	var profs []dataset.Profile
	switch *profile {
	case "STA":
		profs = []dataset.Profile{dataset.STA(*scale)}
	case "STB":
		profs = []dataset.Profile{dataset.STB(*scale)}
	case "ALL":
		profs = []dataset.Profile{dataset.STA(*scale), dataset.STB(*scale)}
	default:
		fmt.Fprintf(os.Stderr, "orfgen: unknown profile %q (want STA, STB, or ALL)\n", *profile)
		os.Exit(2)
	}
	if *months > 0 {
		for i := range profs {
			profs[i] = profs[i].WithMonths(*months)
		}
	}

	gens := make([]*dataset.Generator, len(profs))
	capacities := make(map[string]int64, len(profs))
	disks := 0
	for i, p := range profs {
		// Offset seeds so the merged fleets draw independent streams.
		g, err := dataset.New(p, *seed+uint64(i))
		if err != nil {
			fmt.Fprintln(os.Stderr, "orfgen:", err)
			os.Exit(1)
		}
		gens[i] = g
		capacities[p.Model] = int64(p.CapacityTB) * 1_000_000_000_000
		disks += p.TotalDisks()
	}
	stream := func(fn func(smart.Sample) error) error {
		if len(gens) == 1 {
			return gens[0].Stream(fn)
		}
		return dataset.StreamMerged(gens, fn)
	}

	var n int
	var err error
	if *history != "" {
		n, err = writeHistory(*history, *stripes, *gzipOut, capacities, stream)
	} else {
		n, err = writeSingle(*out, capacities, stream)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "orfgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "orfgen: wrote %d samples for %d disks (%s, %d months)\n",
		n, disks, *profile, profs[0].Months)

	if *meta != "" {
		var all []dataset.DiskMeta
		for _, g := range gens {
			all = append(all, g.Disks()...)
		}
		if err := writeMeta(*meta, all); err != nil {
			fmt.Fprintln(os.Stderr, "orfgen:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "orfgen: ground truth written to %s\n", *meta)
	}
}

// writeSingle streams the whole fleet into one CSV (stdout or -o).
func writeSingle(out string, capacities map[string]int64, stream func(func(smart.Sample) error) error) (int, error) {
	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return 0, err
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	cw := smart.NewWriter(bw, capacities)
	n := 0
	err := stream(func(s smart.Sample) error {
		n++
		return cw.Write(s)
	})
	if err == nil {
		err = cw.Flush()
	}
	if err == nil {
		err = bw.Flush()
	}
	return n, err
}

// writeHistory splits the stream into per-quarter files, each optionally
// striped by serial hash. Striping puts every day's rows in several
// files at once, so loading the directory chronologically requires a
// real multi-file merge — the same shape as Backblaze's quarterly ZIPs
// unpacked into per-drive-cohort shards. File names sort in
// chronological order (fleet-q000-s00.csv, fleet-q000-s01.csv, ...).
// With gz, each file is gzip-compressed and named .csv.gz — the form
// real corpora download as, and what the loader's inline-decompression
// path consumes directly.
func writeHistory(dir string, stripes int, gz bool, capacities map[string]int64, stream func(func(smart.Sample) error) error) (int, error) {
	if stripes < 1 {
		return 0, fmt.Errorf("-stripes must be >= 1, got %d", stripes)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}

	type stripeFile struct {
		f  *os.File
		zw *gzip.Writer
		bw *bufio.Writer
		cw *smart.Writer
	}
	var open []*stripeFile
	quarter := -1
	closeQuarter := func() error {
		for _, sf := range open {
			if sf == nil {
				continue
			}
			if err := sf.cw.Flush(); err != nil {
				return err
			}
			if err := sf.bw.Flush(); err != nil {
				return err
			}
			if sf.zw != nil {
				if err := sf.zw.Close(); err != nil {
					return err
				}
			}
			if err := sf.f.Close(); err != nil {
				return err
			}
		}
		open = nil
		return nil
	}

	n := 0
	err := stream(func(s smart.Sample) error {
		if q := s.Day / 90; q != quarter {
			if err := closeQuarter(); err != nil {
				return err
			}
			quarter = q
			open = make([]*stripeFile, stripes)
		}
		stripe := 0
		if stripes > 1 {
			h := fnv.New32a()
			h.Write([]byte(s.Serial))
			stripe = int(h.Sum32() % uint32(stripes))
		}
		sf := open[stripe]
		if sf == nil {
			name := filepath.Join(dir, fmt.Sprintf("fleet-q%03d-s%02d.csv", quarter, stripe))
			if gz {
				name += ".gz"
			}
			f, err := os.Create(name)
			if err != nil {
				return err
			}
			sf = &stripeFile{f: f}
			var w io.Writer = f
			if gz {
				sf.zw = gzip.NewWriter(f)
				w = sf.zw
			}
			sf.bw = bufio.NewWriterSize(w, 1<<20)
			sf.cw = smart.NewWriter(sf.bw, capacities)
			open[stripe] = sf
		}
		n++
		return sf.cw.Write(s)
	})
	if err == nil {
		err = closeQuarter()
	}
	return n, err
}

func writeMeta(path string, disks []dataset.DiskMeta) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(disks); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
