// Command orfmon is the online monitoring daemon of Algorithm 2: it
// consumes a chronological stream of Backblaze-format SMART snapshots
// (stdin or a file), keeps a per-disk labeling queue, updates the online
// random forest with every released label, and prints an alarm line for
// every disk whose live prediction crosses the risk threshold.
//
// Usage:
//
//	orfgen -profile STA -scale 0.005 | orfmon
//	orfmon -in fleet.csv -threshold 0.6 -v
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"orfdisk"
	"orfdisk/internal/smart"
)

func main() {
	var (
		in        = flag.String("in", "", "input CSV (default stdin)")
		threshold = flag.Float64("threshold", 0.5, "alarm probability threshold")
		trees     = flag.Int("trees", 30, "ensemble size T")
		lambdaN   = flag.Float64("lambdan", 0.02, "negative-class Poisson rate λn")
		verbose   = flag.Bool("v", false, "print daily forest statistics")
		loadPath  = flag.String("load", "", "resume from a model snapshot written by -save")
		savePath  = flag.String("save", "", "write a model snapshot here at end of stream")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "orfmon:", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	cr, err := smart.NewReader(bufio.NewReaderSize(r, 1<<20))
	if err != nil {
		fmt.Fprintln(os.Stderr, "orfmon:", err)
		os.Exit(1)
	}

	var pred *orfdisk.Predictor
	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "orfmon:", err)
			os.Exit(1)
		}
		pred, err = orfdisk.LoadPredictor(bufio.NewReader(f))
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "orfmon:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "orfmon: resumed model with %d prior updates\n",
			pred.Stats().Updates)
	} else {
		pred = orfdisk.NewPredictor(orfdisk.Config{
			Threshold: *threshold,
			ORF:       orfdisk.ORFConfig{Trees: *trees, LambdaNeg: *lambdaN},
		})
	}

	alarmed := map[string]bool{} // suppress repeated alarms per disk
	var samples, alarms, failures, caught int
	lastDay := -1
	for {
		s, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "orfmon:", err)
			os.Exit(1)
		}
		if *verbose && s.Day != lastDay {
			st := pred.Stats()
			fmt.Printf("# day %d: %d disks tracked, %d updates (%d pos), %d nodes, %d trees replaced\n",
				s.Day, pred.TrackedDisks(), st.Updates, st.PosSeen, st.Nodes, st.Replaced)
			lastDay = s.Day
		}
		samples++
		p, err := pred.Ingest(orfdisk.Observation{
			Serial: s.Serial, Day: s.Day, Failed: s.Failure, Values: s.Values,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "orfmon:", err)
			os.Exit(1)
		}
		switch {
		case p.Final:
			failures++
			if alarmed[s.Serial] {
				caught++
			}
			fmt.Printf("FAILED  day=%-5d disk=%s (alarmed before failure: %v)\n",
				s.Day, s.Serial, alarmed[s.Serial])
			delete(alarmed, s.Serial)
		case p.Risky && !alarmed[s.Serial]:
			alarms++
			alarmed[s.Serial] = true
			fmt.Printf("ALARM   day=%-5d disk=%s score=%.3f  -> recommend immediate data migration\n",
				s.Day, s.Serial, p.Score)
		}
	}
	st := pred.Stats()
	fmt.Printf("\n--- orfmon summary ---\n")
	fmt.Printf("samples processed   %d\n", samples)
	fmt.Printf("alarms raised       %d\n", alarms)
	fmt.Printf("failures observed   %d (alarmed beforehand: %d)\n", failures, caught)
	fmt.Printf("model updates       %d (%d positive / %d negative)\n",
		st.Updates, st.PosSeen, st.NegSeen)
	fmt.Printf("forest              %d nodes, %d leaves, %d trees replaced\n",
		st.Nodes, st.Leaves, st.Replaced)
	if top := pred.FeatureImportance(); len(top) > 0 {
		fmt.Printf("top failure signals ")
		for i, f := range top {
			if i == 3 {
				break
			}
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Printf("%s (%.0f%%)", f.Label, 100*f.Importance)
		}
		fmt.Println()
	}

	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "orfmon:", err)
			os.Exit(1)
		}
		bw := bufio.NewWriter(f)
		if err := pred.SaveModel(bw); err == nil {
			err = bw.Flush()
		} else {
			fmt.Fprintln(os.Stderr, "orfmon:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "orfmon:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "orfmon: model snapshot written to %s\n", *savePath)
	}
}
