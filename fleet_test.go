package orfdisk

import (
	"testing"
)

func fleetObs(serial, model string, day int, failed bool) FleetObservation {
	return FleetObservation{
		Model: model,
		Observation: Observation{
			Serial: serial, Day: day, Failed: failed,
			Values: make([]float64, CatalogSize()),
		},
	}
}

func TestFleetRoutesByModel(t *testing.T) {
	f := NewFleet(Config{ORF: ORFConfig{Trees: 3, Seed: 1}, Horizon: 2})
	for day := 0; day < 5; day++ {
		if _, err := f.Ingest(fleetObs("a1", "ST4000", day, false)); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Ingest(fleetObs("b1", "ST3000", day, false)); err != nil {
			t.Fatal(err)
		}
	}
	models := f.Models()
	if len(models) != 2 || models[0] != "ST3000" || models[1] != "ST4000" {
		t.Fatalf("models = %v", models)
	}
	// Each predictor only saw its own disk: horizon 2, 5 samples -> 3
	// negatives each.
	for _, m := range models {
		if got := f.Predictor(m).Stats().NegSeen; got != 3 {
			t.Fatalf("model %s saw %d negatives, want 3", m, got)
		}
	}
	if f.TrackedDisks() != 2 {
		t.Fatalf("tracked %d disks", f.TrackedDisks())
	}
}

func TestFleetRejectsModelChange(t *testing.T) {
	f := NewFleet(Config{ORF: ORFConfig{Trees: 3, Seed: 1}})
	if _, err := f.Ingest(fleetObs("a1", "ST4000", 0, false)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Ingest(fleetObs("a1", "ST3000", 1, false)); err == nil {
		t.Fatal("model change accepted")
	}
}

func TestFleetRejectsMissingModelForUnknownDisk(t *testing.T) {
	f := NewFleet(Config{ORF: ORFConfig{Trees: 3, Seed: 1}})
	if _, err := f.Ingest(fleetObs("ghost", "", 0, false)); err == nil {
		t.Fatal("missing model accepted for unknown disk")
	}
}

func TestFleetInfersModelForKnownDisk(t *testing.T) {
	f := NewFleet(Config{ORF: ORFConfig{Trees: 3, Seed: 1}})
	if _, err := f.Ingest(fleetObs("a1", "ST4000", 0, false)); err != nil {
		t.Fatal(err)
	}
	// Later report without a model string routes by memory.
	if _, err := f.Ingest(fleetObs("a1", "", 1, false)); err != nil {
		t.Fatalf("known disk without model rejected: %v", err)
	}
}

func TestFleetFailureReleasesDisk(t *testing.T) {
	f := NewFleet(Config{ORF: ORFConfig{Trees: 3, Seed: 1}, Horizon: 3})
	for day := 0; day < 3; day++ {
		if _, err := f.Ingest(fleetObs("a1", "ST4000", day, false)); err != nil {
			t.Fatal(err)
		}
	}
	pred, err := f.Ingest(fleetObs("a1", "ST4000", 3, true))
	if err != nil {
		t.Fatal(err)
	}
	if !pred.Final {
		t.Fatal("failure not marked final")
	}
	if f.TrackedDisks() != 0 {
		t.Fatal("failed disk still tracked")
	}
	// The model's forest absorbed the queued positives.
	if f.Predictor("ST4000").Stats().PosSeen == 0 {
		t.Fatal("no positives reached the model")
	}
	// Re-registering the serial under a different model is allowed after
	// failure (drive slots get reused).
	if _, err := f.Ingest(fleetObs("a1", "ST3000", 10, false)); err != nil {
		t.Fatalf("slot reuse rejected: %v", err)
	}
}

func TestFleetRetire(t *testing.T) {
	f := NewFleet(Config{ORF: ORFConfig{Trees: 3, Seed: 1}})
	if _, err := f.Ingest(fleetObs("a1", "ST4000", 0, false)); err != nil {
		t.Fatal(err)
	}
	f.Retire("a1")
	if f.TrackedDisks() != 0 {
		t.Fatal("retired disk still tracked")
	}
	f.Retire("never-seen") // must not panic
}

func TestFleetSetThreshold(t *testing.T) {
	f := NewFleet(Config{ORF: ORFConfig{Trees: 3, Seed: 1}})
	if _, err := f.Ingest(fleetObs("a1", "ST4000", 0, false)); err != nil {
		t.Fatal(err)
	}
	f.SetThreshold(0.9)
	if f.Predictor("ST4000").Threshold() != 0.9 {
		t.Fatal("threshold not propagated to existing predictor")
	}
	if _, err := f.Ingest(fleetObs("b1", "ST3000", 0, false)); err != nil {
		t.Fatal(err)
	}
	if f.Predictor("ST3000").Threshold() != 0.9 {
		t.Fatal("threshold not applied to new predictor")
	}
}
