package orfdisk

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"orfdisk/internal/metrics"
	"orfdisk/internal/replica"
	"orfdisk/internal/wal"
)

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func newLeader(t *testing.T, dir string) (*Engine, *replica.Source) {
	t.Helper()
	eng, err := NewEngine(EngineConfig{Predictor: engineTestConfig(), DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	src, err := replica.NewSource("127.0.0.1:0", replica.SourceConfig{WAL: eng.WAL()})
	if err != nil {
		t.Fatal(err)
	}
	return eng, src
}

func newFollower(t *testing.T, dir, leaderAddr string) (*Engine, *replica.Follower) {
	t.Helper()
	eng, err := NewEngine(EngineConfig{
		Predictor: engineTestConfig(), DataDir: dir, Follower: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	fl, err := replica.StartFollower(leaderAddr, replica.FollowerConfig{
		Applier: eng, RetryInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, fl
}

func snapFiles(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte, len(paths))
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		out[filepath.Base(p)] = b
	}
	return out
}

// TestReplicationBitIdenticalPromotion is the harness the subsystem is
// accepted against: a leader dies mid-ingest, its follower is promoted,
// the remaining stream continues on the promoted node — and both the
// live predictions and the final saved state are BYTE-identical to a
// reference run that never failed over. Replication + promotion are
// exactly invisible.
func TestReplicationBitIdenticalPromotion(t *testing.T) {
	obs := engineStream(t, 77, 3)
	cut := 2 * len(obs) / 3

	// Reference: one engine ingests the full stream uninterrupted.
	dirRef := t.TempDir()
	ref, err := NewEngine(EngineConfig{Predictor: engineTestConfig(), DataDir: dirRef})
	if err != nil {
		t.Fatal(err)
	}
	refPred := make([]Prediction, len(obs))
	refErr := make([]error, len(obs))
	for i, o := range obs {
		refPred[i], refErr[i] = ref.Ingest(o)
	}
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}

	// The cluster: a leader shipping its WAL to one follower.
	dirL, dirF := t.TempDir(), t.TempDir()
	leader, src := newLeader(t, dirL)
	follower, fl := newFollower(t, dirF, src.Addr())

	// Ingest the prefix on the leader; the leader's live predictions
	// already must match the reference (same deterministic stream).
	for i, o := range obs[:cut] {
		pred, err := leader.Ingest(o)
		if (err == nil) != (refErr[i] == nil) {
			t.Fatalf("obs %d: error divergence: leader %v ref %v", i, err, refErr[i])
		}
		if err == nil && !samePrediction(pred, refPred[i]) {
			t.Fatalf("obs %d: leader prediction diverged from reference", i)
		}
	}
	leaderLast := leader.WAL().NextSeq() - 1
	waitUntil(t, 30*time.Second, "follower catch-up", func() bool {
		return follower.ReplicationResume() == leaderLast
	})

	// The follower is read-only until promoted.
	if _, err := follower.Ingest(obs[cut]); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("follower accepted a write: %v", err)
	}

	// Kill the leader mid-deployment: tear down its replication source
	// and abandon the engine without the final snapshot a clean Close
	// would take — from the follower's view the process just died.
	src.Close()
	fl.Close()
	follower.Promote()
	if follower.IsFollower() {
		t.Fatal("promotion did not take")
	}

	// The promoted follower finishes the stream. Every live prediction
	// must be bit-identical to the uninterrupted reference run: same
	// scores (down to float bits), same alarms, same RNG streams.
	for i := cut; i < len(obs); i++ {
		pred, err := follower.Ingest(obs[i])
		if (err == nil) != (refErr[i] == nil) {
			t.Fatalf("obs %d: error divergence after promotion: %v vs %v", i, err, refErr[i])
		}
		if err == nil && !samePrediction(pred, refPred[i]) {
			t.Fatalf("obs %d: post-promotion prediction diverged from reference:\ngot  %+v\nwant %+v",
				i, pred, refPred[i])
		}
	}
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}

	// The promoted node's saved state is byte-identical to the reference
	// run's: the follower mirrored the leader's WAL sequence numbers, so
	// snapshots carry the same positions, and predictor serialization is
	// deterministic.
	want := snapFiles(t, dirRef)
	got := snapFiles(t, dirF)
	if len(want) == 0 {
		t.Fatal("reference run produced no snapshots")
	}
	if len(got) != len(want) {
		t.Fatalf("snapshot sets differ: %d files vs %d", len(got), len(want))
	}
	for name, wb := range want {
		gb, ok := got[name]
		if !ok {
			t.Fatalf("promoted follower is missing snapshot %s", name)
		}
		if !bytes.Equal(gb, wb) {
			t.Fatalf("snapshot %s differs from the uninterrupted run (%d vs %d bytes)",
				name, len(gb), len(wb))
		}
	}
}

// TestFollowerResumeAfterRestart restarts a follower and checks that it
// reconnects from its own durable position — no re-seed, no duplicate
// application — and converges with the leader.
func TestFollowerResumeAfterRestart(t *testing.T) {
	obs := engineStream(t, 31, 2)
	half := len(obs) / 2

	dirL, dirF := t.TempDir(), t.TempDir()
	leader, src := newLeader(t, dirL)
	defer src.Close()
	defer leader.Close()

	follower, fl := newFollower(t, dirF, src.Addr())
	for _, o := range obs[:half] {
		if _, err := leader.Ingest(o); err != nil {
			t.Fatal(err)
		}
	}
	leaderLast := leader.WAL().NextSeq() - 1
	waitUntil(t, 30*time.Second, "first catch-up", func() bool {
		return follower.ReplicationResume() == leaderLast
	})

	// Stop the follower (client first, then a clean engine shutdown that
	// persists snapshots) and keep writing on the leader meanwhile.
	fl.Close()
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}
	for _, o := range obs[half:] {
		if _, err := leader.Ingest(o); err != nil {
			t.Fatal(err)
		}
	}

	// Restart: recovery must put the resume position exactly where the
	// stream stopped, and the new client picks up from there.
	follower2, fl2 := newFollower(t, dirF, src.Addr())
	defer fl2.Close()
	defer follower2.Close()
	if got := follower2.ReplicationResume(); got != leaderLast {
		t.Fatalf("recovered resume position %d, want %d", got, leaderLast)
	}
	leaderLast = leader.WAL().NextSeq() - 1
	waitUntil(t, 30*time.Second, "post-restart catch-up", func() bool {
		return follower2.ReplicationResume() == leaderLast
	})

	// Converged: identical per-model forest statistics.
	wantStats := fmt.Sprintf("%+v", leader.Stats())
	gotStats := fmt.Sprintf("%+v", follower2.Stats())
	if wantStats != gotStats {
		t.Fatalf("stats diverged after resume:\nleader   %s\nfollower %s", wantStats, gotStats)
	}
}

// TestFollowerGatesWritesAndReadiness needs no network: role gating and
// readiness are engine-local.
func TestFollowerGatesWritesAndReadiness(t *testing.T) {
	eng, err := NewEngine(EngineConfig{
		Predictor: engineTestConfig(), DataDir: t.TempDir(),
		Follower: true, ReadyMaxLag: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	obs := engineStream(t, 5, 1)[0]
	if _, err := eng.Ingest(obs); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("Ingest on follower: %v, want ErrNotLeader", err)
	}
	for _, res := range eng.IngestBatch([]FleetObservation{obs}) {
		if !errors.Is(res.Err, ErrNotLeader) {
			t.Fatalf("IngestBatch on follower: %v, want ErrNotLeader", res.Err)
		}
	}
	if err := eng.Retire("X"); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("Retire on follower: %v, want ErrNotLeader", err)
	}
	if ok, reason := eng.Ready(); ok || reason == "" {
		t.Fatalf("follower ready before hearing from a leader (reason %q)", reason)
	}
	// Caught up within the lag bound -> ready; too far behind -> not.
	eng.ObserveLeaderHead(8, time.Now())
	if ok, _ := eng.Ready(); !ok {
		t.Fatal("follower not ready at lag <= bound")
	}
	eng.ObserveLeaderHead(100, time.Now())
	if ok, _ := eng.Ready(); ok {
		t.Fatal("follower ready at lag > bound")
	}
	st := eng.Replication()
	if st.Role != "follower" || st.LagRecords != 100 {
		t.Fatalf("replication status: %+v", st)
	}

	// Promotion lifts the gate and runs hooks exactly once.
	hooks := 0
	eng.OnPromote(func() { hooks++ })
	eng.Promote()
	eng.Promote() // idempotent
	if hooks != 1 {
		t.Fatalf("OnPromote ran %d times", hooks)
	}
	if _, err := eng.Ingest(obs); err != nil {
		t.Fatalf("Ingest after promotion: %v", err)
	}
	if ok, _ := eng.Ready(); !ok {
		t.Fatal("leader not ready")
	}
	if st := eng.Replication(); st.Role != "leader" {
		t.Fatalf("role after promotion: %+v", st)
	}
	// Hooks registered after promotion fire immediately.
	late := 0
	eng.OnPromote(func() { late++ })
	if late != 1 {
		t.Fatal("post-promotion OnPromote did not fire")
	}
}

// leaderRecords ingests obs on a fresh leader engine and returns the
// WAL records it produced, payloads copied (cursor buffers alias).
func leaderRecords(t *testing.T, eng *Engine, obs []FleetObservation) []replica.Record {
	t.Helper()
	for _, o := range obs {
		if _, err := eng.Ingest(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.WAL().Sync(); err != nil {
		t.Fatal(err)
	}
	cur, err := wal.OpenCursor(eng.WAL().Dir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	var recs []replica.Record
	for {
		seq, p, err := cur.Next()
		if errors.Is(err, wal.ErrNoMore) {
			return recs
		}
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, replica.Record{Seq: seq, Payload: append([]byte(nil), p...)})
	}
}

// TestApplyReplicatedRedeliveryConverges is the regression test for the
// redelivery wedge: a transient apply failure could leave a record in
// the follower's WAL but not in its shards, and the leader's redelivery
// after reconnect used to hit AppendAt's monotonicity check forever.
// Redelivered records already below the WAL tail must skip the append
// and still run the in-memory apply.
func TestApplyReplicatedRedeliveryConverges(t *testing.T) {
	obs := engineStream(t, 9, 1)
	if len(obs) > 6 {
		obs = obs[:6]
	}
	leader, err := NewEngine(EngineConfig{Predictor: engineTestConfig(), DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	recs := leaderRecords(t, leader, obs)
	if len(recs) < 4 {
		t.Fatalf("leader produced only %d WAL records", len(recs))
	}
	split := len(recs) - 2

	follower, err := NewEngine(EngineConfig{
		Predictor: engineTestConfig(), DataDir: t.TempDir(), Follower: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	if err := follower.ApplyReplicated(recs[:split]); err != nil {
		t.Fatal(err)
	}
	// Recreate the half-applied state a transient shard failure leaves
	// behind: the tail records are durable in the follower's WAL, but the
	// stream died before the in-memory apply, so replApplied lags NextSeq.
	for _, r := range recs[split:] {
		if err := follower.WAL().AppendAt(r.Seq, r.Payload); err != nil {
			t.Fatal(err)
		}
	}
	if got := follower.ReplicationResume(); got != recs[split-1].Seq {
		t.Fatalf("resume %d, want %d", got, recs[split-1].Seq)
	}

	// The leader redelivers from the acknowledged position — the full
	// batch, duplicates included. Before the fix this failed forever on
	// AppendAt("behind next sequence") for the already-appended tail.
	if err := follower.ApplyReplicated(recs); err != nil {
		t.Fatalf("redelivery after half-applied state: %v", err)
	}
	last := recs[len(recs)-1].Seq
	if got := follower.ReplicationResume(); got != last {
		t.Fatalf("resume %d after redelivery, want %d", got, last)
	}
	// The shards really applied the tail: learned state matches a leader
	// that ingested the same stream directly.
	want := fmt.Sprintf("%+v", leader.Stats())
	if got := fmt.Sprintf("%+v", follower.Stats()); got != want {
		t.Fatalf("stats diverged after redelivery:\nleader   %s\nfollower %s", want, got)
	}
}

// TestFollowerNotReadyOnSilence: a dead stream freezes the observed
// leader head, so lag reads zero exactly when the replica is stalest —
// silence is what flips readiness off.
func TestFollowerNotReadyOnSilence(t *testing.T) {
	eng, err := NewEngine(EngineConfig{
		Predictor: engineTestConfig(), DataDir: t.TempDir(),
		Follower: true, ReadyMaxLag: 100, ReadyMaxSilence: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	eng.ObserveLeaderHead(0, time.Now())
	if ok, reason := eng.Ready(); !ok {
		t.Fatalf("fresh frame but not ready: %s", reason)
	}
	time.Sleep(80 * time.Millisecond)
	ok, reason := eng.Ready()
	if ok {
		t.Fatal("ready despite silence past the limit")
	}
	if reason == "" {
		t.Fatal("silence rejection carries no reason")
	}
	if st := eng.Replication(); st.SilenceSeconds <= 0 {
		t.Fatalf("SilenceSeconds = %v, want > 0", st.SilenceSeconds)
	}
	// A new frame restores readiness.
	eng.ObserveLeaderHead(0, time.Now())
	if ok, reason := eng.Ready(); !ok {
		t.Fatalf("not ready after stream resumed: %s", reason)
	}
}

// TestDemoteFencesWrites: Demote is the fencing half of failover — an
// old leader told to stand down refuses writes immediately and reports
// the follower role, but keeps serving reads.
func TestDemoteFencesWrites(t *testing.T) {
	eng, err := NewEngine(EngineConfig{Predictor: engineTestConfig(), DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	obs := engineStream(t, 11, 1)[0]
	if _, err := eng.Ingest(obs); err != nil {
		t.Fatal(err)
	}
	applied := eng.WAL().NextSeq() - 1

	eng.Demote()
	eng.Demote() // idempotent
	if _, err := eng.Ingest(obs); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("Ingest after Demote: %v, want ErrNotLeader", err)
	}
	st := eng.Replication()
	if st.Role != "follower" {
		t.Fatalf("role after Demote: %q", st.Role)
	}
	if st.Applied != applied {
		t.Fatalf("applied position reset by Demote: %d, want %d", st.Applied, applied)
	}
	// Promote undoes the fence (an operator decided it really is leader).
	eng.Promote()
	if _, err := eng.Ingest(obs); err != nil {
		t.Fatalf("Ingest after re-Promote: %v", err)
	}
}

// TestReplicationHammerThreeNodes drives a leader and two followers
// with concurrent batched ingest and checks full convergence. Sized to
// stay fast under -race -short (the CI race job).
func TestReplicationHammerThreeNodes(t *testing.T) {
	obs := engineStream(t, 42, 4)
	if testing.Short() && len(obs) > 3000 {
		obs = obs[:3000]
	}

	leader, src := newLeader(t, t.TempDir())
	defer leader.Close()
	defer src.Close()
	f1, fl1 := newFollower(t, t.TempDir(), src.Addr())
	defer f1.Close()
	defer fl1.Close()
	f2, fl2 := newFollower(t, t.TempDir(), src.Addr())
	defer f2.Close()
	defer fl2.Close()

	// Concurrent writers, chunked batches. Shedding (ErrBusy) is legal
	// under pressure; everything the leader accepted must replicate.
	const writers = 4
	var wg sync.WaitGroup
	per := (len(obs) + writers - 1) / writers
	for w := 0; w < writers; w++ {
		lo := w * per
		hi := min(lo+per, len(obs))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(chunk []FleetObservation) {
			defer wg.Done()
			for len(chunk) > 0 {
				n := min(64, len(chunk))
				leader.IngestBatch(chunk[:n])
				chunk = chunk[n:]
			}
		}(obs[lo:hi])
	}
	wg.Wait()
	leaderLast := leader.WAL().NextSeq() - 1
	waitUntil(t, 60*time.Second, "follower 1 catch-up", func() bool {
		return f1.ReplicationResume() == leaderLast
	})
	waitUntil(t, 60*time.Second, "follower 2 catch-up", func() bool {
		return f2.ReplicationResume() == leaderLast
	})
	want := fmt.Sprintf("%+v", leader.Stats())
	for i, f := range []*Engine{f1, f2} {
		if got := fmt.Sprintf("%+v", f.Stats()); got != want {
			t.Fatalf("follower %d stats diverged:\nleader   %s\nfollower %s", i+1, want, got)
		}
	}
}

// TestAutoReseedAfterTruncation is the acceptance harness for the
// re-seed half of the subsystem: the leader's snapshots have truncated
// the WAL prefix a new follower would need, so the follower's resume
// position is fatally below the leader's oldest segment. With a Seeder
// wired, the follower must detect the divergence, pull a full seed
// (snapshots + backfill cursor + WAL tail) over the replication
// socket, install it, catch up live — and after the leader dies, be
// promoted into a node whose predictions and saved state are
// bit-identical to a run that never failed over.
func TestAutoReseedAfterTruncation(t *testing.T) {
	obs := engineStream(t, 77, 3)
	cut := 2 * len(obs) / 3

	// Reference: one engine ingests the full stream uninterrupted.
	dirRef := t.TempDir()
	ref, err := NewEngine(EngineConfig{Predictor: engineTestConfig(), DataDir: dirRef})
	if err != nil {
		t.Fatal(err)
	}
	refPred := make([]Prediction, len(obs))
	refErr := make([]error, len(obs))
	for i, o := range obs {
		refPred[i], refErr[i] = ref.Ingest(o)
	}
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}

	// Leader with tiny WAL segments: the mid-run snapshot truncates the
	// early segments, so a from-scratch follower cannot stream-catch-up.
	dirL := t.TempDir()
	leader, err := NewEngine(EngineConfig{
		Predictor: engineTestConfig(), DataDir: dirL, SegmentBytes: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	src, err := replica.NewSource("127.0.0.1:0", replica.SourceConfig{
		WAL: leader.WAL(), SeedProvider: leader,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range obs[:cut] {
		if _, err := leader.Ingest(o); (err == nil) != (refErr[i] == nil) {
			t.Fatalf("obs %d: error divergence on leader: %v vs %v", i, err, refErr[i])
		}
	}
	if err := leader.Snapshot(); err != nil {
		t.Fatal(err)
	}
	oldest, err := leader.WAL().OldestSegment()
	if err != nil {
		t.Fatal(err)
	}
	if oldest <= 1 {
		t.Fatalf("snapshot did not truncate the WAL (oldest %d) — the test would not exercise re-seed", oldest)
	}

	// Fresh follower, empty directory, Seeder wired. Its resume position
	// (0) is below the leader's oldest segment: fatal for streaming,
	// recoverable by seed.
	dirF := t.TempDir()
	follower, err := NewEngine(EngineConfig{
		Predictor: engineTestConfig(), DataDir: dirF, Follower: true, SegmentBytes: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	fl, err := replica.StartFollower(src.Addr(), replica.FollowerConfig{
		Applier: follower, Seeder: follower,
		Metrics: reg, RetryInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	leaderLast := leader.WAL().NextSeq() - 1
	waitUntil(t, 60*time.Second, "re-seed and catch-up", func() bool {
		return follower.ReplicationResume() == leaderLast
	})
	if got := reg.Counter("replica_reseeds_total", "").Value(); got < 1 {
		t.Fatalf("replica_reseeds_total = %d, want >= 1", got)
	}

	// Kill the leader without ceremony; promote the reseeded follower.
	src.Close()
	fl.Close()
	leaderStats := fmt.Sprintf("%+v", leader.Stats())
	if got := fmt.Sprintf("%+v", follower.Stats()); got != leaderStats {
		t.Fatalf("stats diverged after re-seed:\nleader   %s\nfollower %s", leaderStats, got)
	}
	follower.Promote()
	for i := cut; i < len(obs); i++ {
		pred, err := follower.Ingest(obs[i])
		if (err == nil) != (refErr[i] == nil) {
			t.Fatalf("obs %d: error divergence after promotion: %v vs %v", i, err, refErr[i])
		}
		if err == nil && !samePrediction(pred, refPred[i]) {
			t.Fatalf("obs %d: post-promotion prediction diverged from reference:\ngot  %+v\nwant %+v",
				i, pred, refPred[i])
		}
	}
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}
	// Final saved state matches the uninterrupted run byte for byte
	// (snapshot names are per-model, so the close-time snapshots
	// overwrite anything the seed installed).
	want := snapFiles(t, dirRef)
	got := snapFiles(t, dirF)
	if len(want) == 0 {
		t.Fatal("reference run produced no snapshots")
	}
	if len(got) != len(want) {
		t.Fatalf("snapshot sets differ: %d files vs %d", len(got), len(want))
	}
	for name, wb := range want {
		gb, ok := got[name]
		if !ok {
			t.Fatalf("reseeded follower is missing snapshot %s", name)
		}
		if !bytes.Equal(gb, wb) {
			t.Fatalf("snapshot %s differs from the uninterrupted run (%d vs %d bytes)",
				name, len(gb), len(wb))
		}
	}
}

// TestReseedFromEmptyLeader: an old split-brain leader re-pointed at a
// brand-new EMPTY leader is fatally ahead (ErrFollowerAhead) and must
// converge by seed like any other diverged follower. The empty leader's
// seed set holds no snapshots and no durable records — only the sealed
// (empty) WAL tail segment — and the install must still succeed,
// wiping the stale state; a zero-file seed set would make CommitSeed
// refuse and the follower retry forever.
func TestReseedFromEmptyLeader(t *testing.T) {
	obs := engineStream(t, 51, 2)

	// Stale node: real state, then reopened in follower mode.
	dirF := t.TempDir()
	stale, err := NewEngine(EngineConfig{Predictor: engineTestConfig(), DataDir: dirF})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range obs[:20] {
		stale.Ingest(o) //nolint:errcheck
	}
	if stale.WAL().NextSeq() <= 1 {
		t.Fatal("stale node applied nothing; test would not exercise divergence")
	}
	if err := stale.Close(); err != nil {
		t.Fatal(err)
	}
	follower, err := NewEngine(EngineConfig{
		Predictor: engineTestConfig(), DataDir: dirF, Follower: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if follower.ReplicationResume() == 0 {
		t.Fatal("reopened follower recovered no state; test would not exercise divergence")
	}

	// Brand-new empty leader.
	dirL := t.TempDir()
	leader, err := NewEngine(EngineConfig{Predictor: engineTestConfig(), DataDir: dirL})
	if err != nil {
		t.Fatal(err)
	}
	src, err := replica.NewSource("127.0.0.1:0", replica.SourceConfig{
		WAL: leader.WAL(), SeedProvider: leader,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	reg := metrics.NewRegistry()
	fl, err := replica.StartFollower(src.Addr(), replica.FollowerConfig{
		Applier: follower, Seeder: follower,
		Metrics: reg, RetryInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()

	waitUntil(t, 30*time.Second, "re-seed to empty state", func() bool {
		return follower.ReplicationResume() == 0
	})
	if got := reg.Counter("replica_reseeds_total", "").Value(); got < 1 {
		t.Fatalf("replica_reseeds_total = %d, want >= 1", got)
	}
	// The wiped follower then tracks the new leader's writes normally.
	if _, err := leader.Ingest(obs[0]); err != nil {
		t.Fatal(err)
	}
	leaderLast := leader.WAL().NextSeq() - 1
	waitUntil(t, 30*time.Second, "stream catch-up after wipe", func() bool {
		return follower.ReplicationResume() == leaderLast
	})
	fl.Close()
	src.Close()
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}
	if err := leader.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSyncAcksTimeoutWithoutFollower: synchronous commit with no
// follower attached cannot satisfy the guarantee — every write path
// must report ErrSyncUnacked after the timeout while the record stays
// durable locally (that distinction is what the server's
// X-Orf-Write-Applied header carries to the router).
func TestSyncAcksTimeoutWithoutFollower(t *testing.T) {
	eng, err := NewEngine(EngineConfig{
		Predictor: engineTestConfig(), DataDir: t.TempDir(),
		SyncAcks: 1, SyncAckTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	src, err := replica.NewSource("127.0.0.1:0", replica.SourceConfig{WAL: eng.WAL()})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	eng.SetAckWaiter(src)

	obs := engineStream(t, 13, 1)
	if _, err := eng.Ingest(obs[0]); !errors.Is(err, ErrSyncUnacked) {
		t.Fatalf("Ingest without follower: %v, want ErrSyncUnacked", err)
	}
	if next := eng.WAL().NextSeq(); next != 2 {
		t.Fatalf("unacked write not durable locally: NextSeq %d, want 2", next)
	}
	for _, res := range eng.IngestBatch(obs[1:2]) {
		if !errors.Is(res.Err, ErrSyncUnacked) {
			t.Fatalf("IngestBatch without follower: %v, want ErrSyncUnacked", res.Err)
		}
	}
	if st := eng.Replication(); st.SyncAcks != 1 {
		t.Fatalf("Replication().SyncAcks = %d, want 1", st.SyncAcks)
	}
}

// TestSyncAcksSatisfiedAndPartition: with a live follower, synchronous
// writes complete — and every completed write is already applied on
// the follower by the time Ingest returns (that is the whole point:
// kill -9 the leader after any acknowledged write and the follower has
// it). Closing the follower partitions the group: the next write times
// out with ErrSyncUnacked.
func TestSyncAcksSatisfiedAndPartition(t *testing.T) {
	obs := engineStream(t, 21, 1)
	if len(obs) > 50 {
		obs = obs[:50]
	}
	leader, err := NewEngine(EngineConfig{
		Predictor: engineTestConfig(), DataDir: t.TempDir(),
		SyncAcks: 1, SyncAckTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	src, err := replica.NewSource("127.0.0.1:0", replica.SourceConfig{WAL: leader.WAL()})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	leader.SetAckWaiter(src)

	follower, fl := newFollower(t, t.TempDir(), src.Addr())
	defer follower.Close()
	for _, o := range obs {
		if _, err := leader.Ingest(o); err != nil {
			t.Fatalf("synchronous Ingest with live follower: %v", err)
		}
		// The ack the leader just waited on implies the follower already
		// applied and fsynced this record — no waitUntil needed.
		if got, want := follower.ReplicationResume(), leader.WAL().NextSeq()-1; got != want {
			t.Fatalf("acknowledged write not on follower: resume %d, want %d", got, want)
		}
	}

	// Partition: the follower goes away; the guarantee becomes
	// unsatisfiable and writes degrade to durable-but-unacked.
	fl.Close()
	if _, err := leader.Ingest(obs[0]); !errors.Is(err, ErrSyncUnacked) {
		t.Fatalf("Ingest after partition: %v, want ErrSyncUnacked", err)
	}
}
