package orfdisk

import (
	"fmt"
	"sync"
	"time"

	"orfdisk/internal/core"
	"orfdisk/internal/smart"
)

// FrozenModel is an immutable point-in-time scoring snapshot of a
// Predictor: the frozen forest plus frozen copies of everything the
// score path touches — the feature selection, the online scaler's
// fitted ranges, the alarm threshold and the positive-sample alarm
// gate. Scores are bit-identical to what Predictor.Score returned at
// the freeze moment, but a FrozenModel never changes after Freeze
// returns, so any number of goroutines may Score it concurrently with
// no locks while the live predictor keeps learning.
//
// This is the unit the serving engine publishes for its lock-free read
// path (Engine.Score, POST /v1/predict); embedders running their own
// Predictor get the same capability from Predictor.Freeze / Frozen.
type FrozenModel struct {
	features  []int
	scaler    *smart.Scaler
	forest    *core.FrozenForest
	threshold float64
	posSeen   int64
	frozenAt  time.Time

	// scratch recycles the per-call projection buffer, and batch the
	// per-call block-projection matrix, across all of one predictor's
	// snapshots, so steady-state scoring allocates nothing.
	scratch *sync.Pool
	batch   *sync.Pool
}

// projScratch is the pooled block-projection matrix ScoreBatchInto
// stages scaled features in: core.BatchBlock rows over one flat backing
// array, matching the forest kernel's block width.
type projScratch struct {
	flat []float64
	rows [][]float64
}

func newProjScratch(dim int) *projScratch {
	s := &projScratch{
		flat: make([]float64, core.BatchBlock*dim),
		rows: make([][]float64, core.BatchBlock),
	}
	for i := range s.rows {
		s.rows[i] = s.flat[i*dim : (i+1)*dim]
	}
	return s
}

// dim returns the per-row projection width the scratch was built for.
func (s *projScratch) dim() int { return len(s.flat) / core.BatchBlock }

// Freeze captures the predictor's current scoring state as an immutable
// snapshot and publishes it (see Frozen). Like Stats, Freeze must not
// run concurrently with Ingest — call it from whatever context owns the
// predictor (the engine calls it on the model's shard worker).
func (p *Predictor) Freeze() *FrozenModel {
	// The pools are shared across snapshots, so their buffer dimension
	// is revalidated on every freeze: a predictor whose feature
	// selection disagrees with the pooled buffers (e.g. state restored
	// over a live instance) gets fresh pools instead of snapshots that
	// silently score a truncated projection.
	if dim := len(p.features); p.scorePool == nil || p.scorePoolDim != dim {
		p.scorePoolDim = dim
		p.scorePool = &sync.Pool{New: func() any {
			buf := make([]float64, dim)
			return &buf
		}}
		p.batchPool = &sync.Pool{New: func() any { return newProjScratch(dim) }}
	}
	fm := &FrozenModel{
		features:  p.features,
		scaler:    p.scaler.Clone(),
		forest:    p.forest.Freeze(),
		threshold: p.threshold,
		posSeen:   p.forest.PosSeen(),
		frozenAt:  time.Now(),
		scratch:   p.scorePool,
		batch:     p.batchPool,
	}
	p.frozen.Store(fm)
	return fm
}

// Frozen returns the most recently frozen snapshot, or nil if Freeze
// has never been called. The load is a single atomic pointer read, safe
// from any goroutine — the intended pattern is one owner calling Freeze
// on a cadence while readers score against Frozen().
func (p *Predictor) Frozen() *FrozenModel { return p.frozen.Load() }

// Score returns the failure probability for a raw catalog vector,
// bit-identical to the score Predictor.Score produced at the freeze
// moment. It allocates nothing in steady state and takes no locks.
func (fm *FrozenModel) Score(values []float64) (float64, error) {
	if len(values) != smart.NumFeatures() {
		return 0, fmt.Errorf("orfdisk: %d values, want %d", len(values), smart.NumFeatures())
	}
	bp := fm.scratch.Get().(*[]float64)
	defer fm.scratch.Put(bp)
	x := *bp
	if len(x) != len(fm.features) {
		// A pooled buffer from a different feature selection: resize
		// rather than score a truncated (or over-long) projection.
		x = make([]float64, len(fm.features))
		*bp = x
	}
	for i, j := range fm.features {
		x[i] = fm.scaler.TransformOne(i, values[j])
	}
	return fm.forest.Score(x)
}

// ScoreBatchInto scores every catalog vector of X into dst (grown or
// truncated to len(X)) and returns dst; a recycled dst makes repeated
// batch scoring allocation-free. The whole batch is validated upfront —
// on error nothing is scored.
//
// Scores are bit-identical to calling Score per vector, but the work is
// batch-shaped end to end: vectors are projected and scaled a block at
// a time, feature-major, into a pooled block matrix (the scaler's
// per-feature range loads hoist out of the sample loop), and each block
// runs through the frozen forest's batch kernel, which streams every
// tree's node records through cache once per block instead of once per
// sample.
func (fm *FrozenModel) ScoreBatchInto(dst []float64, X [][]float64) ([]float64, error) {
	for i := range X {
		if len(X[i]) != smart.NumFeatures() {
			return dst, fmt.Errorf("orfdisk: batch vector %d carries %d values, want %d",
				i, len(X[i]), smart.NumFeatures())
		}
	}
	if cap(dst) < len(X) {
		dst = make([]float64, len(X))
	} else {
		dst = dst[:len(X)]
	}
	if len(X) == 0 {
		return dst, nil
	}
	sb := fm.batch.Get().(*projScratch)
	defer fm.batch.Put(sb)
	dim := len(fm.features)
	if sb.dim() != dim {
		// Pooled matrix from a different feature selection (see Score).
		*sb = *newProjScratch(dim)
	}
	for base := 0; base < len(X); base += core.BatchBlock {
		n := min(core.BatchBlock, len(X)-base)
		blk := X[base : base+n]
		rows := sb.rows[:n]
		// Feature-major projection: the scaler's min/max for feature i
		// load once per block, not once per sample, and TransformOne
		// keeps the arithmetic bit-identical to the slice-at-a-time
		// live path.
		for i, j := range fm.features {
			for s, values := range blk {
				rows[s][i] = fm.scaler.TransformOne(i, values[j])
			}
		}
		// Full-capacity subslice: the kernel fills it in place.
		if _, err := fm.forest.ScoreBatchInto(dst[base:base+n:base+n], rows); err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// Risky reports whether score trips the snapshot's alarm: at or above
// the frozen threshold, with alarms suppressed until the forest had
// absorbed at least one positive sample (exactly Ingest's gate).
func (fm *FrozenModel) Risky(score float64) bool {
	return score >= fm.threshold && fm.posSeen > 0
}

// Threshold returns the alarm threshold captured at freeze time.
func (fm *FrozenModel) Threshold() float64 { return fm.threshold }

// FrozenAt returns the wall-clock freeze moment.
func (fm *FrozenModel) FrozenAt() time.Time { return fm.frozenAt }

// Updates returns the number of forest updates absorbed at freeze time.
func (fm *FrozenModel) Updates() int64 { return fm.forest.Updates() }

// Nodes returns the total tree-node count of the frozen forest.
func (fm *FrozenModel) Nodes() int { return fm.forest.Nodes() }
