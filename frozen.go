package orfdisk

import (
	"fmt"
	"sync"
	"time"

	"orfdisk/internal/core"
	"orfdisk/internal/smart"
)

// FrozenModel is an immutable point-in-time scoring snapshot of a
// Predictor: the frozen forest plus frozen copies of everything the
// score path touches — the feature selection, the online scaler's
// fitted ranges, the alarm threshold and the positive-sample alarm
// gate. Scores are bit-identical to what Predictor.Score returned at
// the freeze moment, but a FrozenModel never changes after Freeze
// returns, so any number of goroutines may Score it concurrently with
// no locks while the live predictor keeps learning.
//
// This is the unit the serving engine publishes for its lock-free read
// path (Engine.Score, POST /v1/predict); embedders running their own
// Predictor get the same capability from Predictor.Freeze / Frozen.
type FrozenModel struct {
	features  []int
	scaler    *smart.Scaler
	forest    *core.FrozenForest
	threshold float64
	posSeen   int64
	frozenAt  time.Time

	// scratch recycles the per-call projection buffer across all of one
	// predictor's snapshots, so steady-state Score allocates nothing.
	scratch *sync.Pool
}

// Freeze captures the predictor's current scoring state as an immutable
// snapshot and publishes it (see Frozen). Like Stats, Freeze must not
// run concurrently with Ingest — call it from whatever context owns the
// predictor (the engine calls it on the model's shard worker).
func (p *Predictor) Freeze() *FrozenModel {
	if p.scorePool == nil {
		dim := len(p.features)
		p.scorePool = &sync.Pool{New: func() any {
			buf := make([]float64, dim)
			return &buf
		}}
	}
	fm := &FrozenModel{
		features:  p.features,
		scaler:    p.scaler.Clone(),
		forest:    p.forest.Freeze(),
		threshold: p.threshold,
		posSeen:   p.forest.PosSeen(),
		frozenAt:  time.Now(),
		scratch:   p.scorePool,
	}
	p.frozen.Store(fm)
	return fm
}

// Frozen returns the most recently frozen snapshot, or nil if Freeze
// has never been called. The load is a single atomic pointer read, safe
// from any goroutine — the intended pattern is one owner calling Freeze
// on a cadence while readers score against Frozen().
func (p *Predictor) Frozen() *FrozenModel { return p.frozen.Load() }

// Score returns the failure probability for a raw catalog vector,
// bit-identical to the score Predictor.Score produced at the freeze
// moment. It allocates nothing in steady state and takes no locks.
func (fm *FrozenModel) Score(values []float64) (float64, error) {
	if len(values) != smart.NumFeatures() {
		return 0, fmt.Errorf("orfdisk: %d values, want %d", len(values), smart.NumFeatures())
	}
	bp := fm.scratch.Get().(*[]float64)
	x := *bp
	for i, j := range fm.features {
		x[i] = fm.scaler.TransformOne(i, values[j])
	}
	score := fm.forest.Score(x)
	fm.scratch.Put(bp)
	return score, nil
}

// ScoreBatchInto scores every catalog vector of X into dst (grown or
// truncated to len(X)) and returns dst; a recycled dst makes repeated
// batch scoring allocation-free. The whole batch is validated upfront —
// on error nothing is scored.
func (fm *FrozenModel) ScoreBatchInto(dst []float64, X [][]float64) ([]float64, error) {
	for i := range X {
		if len(X[i]) != smart.NumFeatures() {
			return dst, fmt.Errorf("orfdisk: batch vector %d carries %d values, want %d",
				i, len(X[i]), smart.NumFeatures())
		}
	}
	if cap(dst) < len(X) {
		dst = make([]float64, len(X))
	} else {
		dst = dst[:len(X)]
	}
	bp := fm.scratch.Get().(*[]float64)
	x := *bp
	for k, values := range X {
		for i, j := range fm.features {
			x[i] = fm.scaler.TransformOne(i, values[j])
		}
		dst[k] = fm.forest.Score(x)
	}
	fm.scratch.Put(bp)
	return dst, nil
}

// Risky reports whether score trips the snapshot's alarm: at or above
// the frozen threshold, with alarms suppressed until the forest had
// absorbed at least one positive sample (exactly Ingest's gate).
func (fm *FrozenModel) Risky(score float64) bool {
	return score >= fm.threshold && fm.posSeen > 0
}

// Threshold returns the alarm threshold captured at freeze time.
func (fm *FrozenModel) Threshold() float64 { return fm.threshold }

// FrozenAt returns the wall-clock freeze moment.
func (fm *FrozenModel) FrozenAt() time.Time { return fm.frozenAt }

// Updates returns the number of forest updates absorbed at freeze time.
func (fm *FrozenModel) Updates() int64 { return fm.forest.Updates() }

// Nodes returns the total tree-node count of the frozen forest.
func (fm *FrozenModel) Nodes() int { return fm.forest.Nodes() }
